//===- bench/bench_regular_section.cpp - E6: §6 RSD data flow ------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Experiment E6 (DESIGN.md): §6's claims for the regular-section
// generalization — the rsd system on β solves in time proportional to the
// number of meet operations (linear in Eβ on chains), and, thanks to the
// cycle restriction g_p(x) ⊓ x = x (recursive calls pass sections of the
// same array position), convergence does *not* degrade with lattice depth:
// the rank-1 (depth-2) and rank-2 (depth-3) cycle workloads need the same
// number of rounds.  Counters: meets, rounds.
//
//===----------------------------------------------------------------------===//

#include "analysis/RegularSectionAnalysis.h"
#include "analysis/SectionDomains.h"
#include "analysis/SectionFramework.h"
#include "graph/BindingGraph.h"
#include "synth/ProgramGen.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace ipse;
using namespace ipse::analysis;

namespace {

/// Chain (or cycle) of procedures passing one array formal along; every
/// formal is declared a rank-R array, the tail writes one element, and all
/// edges are identity bindings.
struct SectionWorkload {
  ir::Program P;
  std::unique_ptr<graph::BindingGraph> BG;
  std::unique_ptr<RsdProblem> Problem;

  SectionWorkload(unsigned N, unsigned Rank, bool Cycle)
      : P(Cycle ? synth::makeCycleProgram(N, 1)
                : synth::makeChainProgram(N, 1)) {
    BG = std::make_unique<graph::BindingGraph>(P);
    Problem = std::make_unique<RsdProblem>(P, *BG);
    for (std::uint32_t I = 1; I != P.numProcs(); ++I) {
      ir::VarId F = P.proc(ir::ProcId(I)).Formals[0];
      Problem->setFormalArray(F, Rank);
    }
    // The tail's local effect: one element.
    ir::VarId Tail =
        P.proc(ir::ProcId(static_cast<std::uint32_t>(P.numProcs() - 1)))
            .Formals[0];
    Problem->setLocalSection(
        Tail, Rank == 1
                  ? RegularSection::section1(Subscript::constant(1))
                  : RegularSection::section2(Subscript::constant(1),
                                             Subscript::constant(2)));
  }
};

void BM_RsdChain(benchmark::State &State) {
  SectionWorkload W(static_cast<unsigned>(State.range(0)), 2, false);
  std::uint64_t Meets = 0;
  unsigned Rounds = 0;
  for (auto _ : State) {
    RsdResult R = solveRsd(*W.Problem);
    benchmark::DoNotOptimize(R);
    Meets = R.MeetOps;
    Rounds = R.MaxComponentRounds;
  }
  State.counters["meets"] = static_cast<double>(Meets);
  State.counters["rounds"] = static_cast<double>(Rounds);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_RsdChain)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_RsdCycle_Rank1(benchmark::State &State) {
  SectionWorkload W(static_cast<unsigned>(State.range(0)), 1, true);
  unsigned Rounds = 0;
  for (auto _ : State) {
    RsdResult R = solveRsd(*W.Problem);
    benchmark::DoNotOptimize(R);
    Rounds = R.MaxComponentRounds;
  }
  State.counters["rounds"] = static_cast<double>(Rounds);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_RsdCycle_Rank1)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Complexity();

void BM_RsdCycle_Rank2(benchmark::State &State) {
  SectionWorkload W(static_cast<unsigned>(State.range(0)), 2, true);
  unsigned Rounds = 0;
  for (auto _ : State) {
    RsdResult R = solveRsd(*W.Problem);
    benchmark::DoNotOptimize(R);
    Rounds = R.MaxComponentRounds;
  }
  State.counters["rounds"] = static_cast<double>(Rounds);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_RsdCycle_Rank2)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Complexity();

/// The same cycle workload solved in the deeper bounded-range lattice
/// (beyond-paper instance of the framework): §6's trade-off "these
/// algorithms would differ only in ... the expense of the meet operation
/// and the depth of the lattice", measured.
void BM_BoundedCycle(benchmark::State &State) {
  ir::Program P =
      synth::makeCycleProgram(static_cast<unsigned>(State.range(0)), 1);
  graph::BindingGraph BG(P);
  SectionProblem<BoundedSectionDomain> Problem(P, BG);
  for (std::uint32_t I = 1; I != P.numProcs(); ++I)
    Problem.setFormalArray(P.proc(ir::ProcId(I)).Formals[0], 1);
  ir::VarId Tail =
      P.proc(ir::ProcId(static_cast<std::uint32_t>(P.numProcs() - 1)))
          .Formals[0];
  Problem.setLocalSection(Tail,
                          BoundedSection::make1(DimRange::interval(1, 8)));
  unsigned Rounds = 0;
  for (auto _ : State) {
    SectionSolveResult<BoundedSectionDomain> R =
        solveSectionProblem(Problem);
    benchmark::DoNotOptimize(R);
    Rounds = R.MaxComponentRounds;
  }
  State.counters["rounds"] = static_cast<double>(Rounds);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BoundedCycle)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

/// Lattice operation microbenchmarks: the per-step costs §6 trades off
/// ("the meet operations may be more expensive" than bit ops).
void BM_Meet(benchmark::State &State) {
  RegularSection A = RegularSection::section2(
      Subscript::symbol(ir::VarId(1)), Subscript::constant(3));
  RegularSection B = RegularSection::section2(
      Subscript::symbol(ir::VarId(2)), Subscript::constant(3));
  for (auto _ : State) {
    RegularSection C = A.meet(B);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_Meet);

void BM_IntersectTest(benchmark::State &State) {
  RegularSection A = RegularSection::section2(Subscript::constant(1),
                                              Subscript::star());
  RegularSection B = RegularSection::section2(Subscript::constant(2),
                                              Subscript::star());
  for (auto _ : State) {
    bool X = A.mayIntersect(B);
    benchmark::DoNotOptimize(X);
  }
}
BENCHMARK(BM_IntersectTest);

void BM_BoundedMeet(benchmark::State &State) {
  BoundedSection A = BoundedSection::make2(
      DimRange::interval(1, 8), DimRange::point(Subscript::constant(3)));
  BoundedSection B = BoundedSection::make2(
      DimRange::interval(5, 9), DimRange::point(Subscript::constant(4)));
  for (auto _ : State) {
    BoundedSection C = A.meet(B);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_BoundedMeet);

/// The global-array side: sections over the call graph.
void BM_GlobalSections(benchmark::State &State) {
  ir::Program P = synth::makeFortranStyleProgram(
      static_cast<unsigned>(State.range(0)), 8, 2, 7);
  graph::CallGraph CG(P);
  GlobalSectionProblem Problem(P, CG);
  // Four global arrays; every tenth procedure writes a row.
  const std::vector<ir::VarId> &Globals = P.proc(P.main()).Locals;
  for (unsigned K = 0; K != 4; ++K)
    Problem.setGlobalArray(Globals[K], 2);
  for (std::uint32_t I = 1; I < P.numProcs(); I += 10)
    Problem.setLocalSection(
        ir::ProcId(I), Globals[I % 4],
        RegularSection::section2(Subscript::constant(static_cast<int>(I)),
                                 Subscript::star()));
  for (auto _ : State) {
    GlobalSectionResult R = solveGlobalSections(Problem);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_GlobalSections)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity();

} // namespace
