//===- bench/bench_service.cpp - Concurrent service throughput ---------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Measures AnalysisService query throughput under a mixed read/write load.
// Like bench_incremental, this is not google-benchmark based: each
// (shape, workers) cell runs one fixed workload and emits one JSON line:
//
//   {"shape":"fortran-4000","procs":4000,"workers":4,"readers":4,
//    "reads":600,"edits":40,"wall_ms":812.4,"qps":738.6,
//    "read_p50_us":2048,"read_p99_us":8192,"read_mean_us":2913,
//    "published":40,"read_batches":312,"batched_reads":600,
//    "dedup_saved":41,"qps_vs_w1":1.9}
//
// Workload per cell: `readers` client threads each issue `reads/readers`
// blocking call()s drawn from a pool of gmod/guse/rmod/mod/use queries
// over the initial procedures, while the main thread streams `edits`
// effect-set deltas (tier-1, the steady-state editing profile) through the
// writer.  Latency is measured client-side (submit to response, so it
// includes queueing), aggregated in a LatencyHistogram; qps counts reads
// only.  qps_vs_w1 is this cell's qps over the same shape's workers=1 qps
// — the worker-scaling figure (meaningful only on multi-core hosts; on a
// single CPU all cells contend for one core and the curve is flat).
//
//===----------------------------------------------------------------------===//

#include "incremental/Edit.h"
#include "service/AnalysisService.h"
#include "support/LatencyHistogram.h"
#include "support/Rng.h"
#include "synth/EditGen.h"
#include "synth/ProgramGen.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace ipse;
using namespace ipse::service;

namespace {

using Clock = std::chrono::steady_clock;

struct Shape {
  const char *Name;
  unsigned Procs, Globals;
  std::uint64_t Seed;
  unsigned Reads; ///< Total across all reader threads.
  unsigned Edits;
};

// fortran-4000 matches bench_incremental's large shape; reads are scaled
// down so the full matrix stays under a minute per run.
const Shape Shapes[] = {
    {"fortran-500", 500, 128, 5, 2000, 100},
    {"fortran-4000", 4000, 512, 9, 600, 40},
};

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

double runCell(const Shape &Sh, unsigned Workers, unsigned Readers,
               double BaselineQps) {
  ServiceOptions Opts;
  Opts.Workers = Workers;
  Opts.QueueCapacity = 256;
  AnalysisService Svc(synth::makeFortranStyleProgram(Sh.Procs, Sh.Globals,
                                                     /*CallsPerProc=*/3,
                                                     Sh.Seed),
                      Opts);

  std::vector<std::string> Pool;
  {
    const ir::Program &P = Svc.snapshot()->program();
    for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
      std::string N = P.name(ir::ProcId(I));
      Pool.push_back("gmod " + N);
      Pool.push_back("guse " + N);
      Pool.push_back("rmod " + N);
      Pool.push_back("mod " + N + " 0");
      Pool.push_back("use " + N + " 1");
    }
  }

  // Client-side latency: submit to response, queueing included.
  LatencyHistogram Lat;
  unsigned PerReader = Sh.Reads / Readers;
  Clock::time_point Start = Clock::now();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Readers; ++T)
    Threads.emplace_back([&, T] {
      Rng R(100 + T);
      for (unsigned I = 0; I != PerReader; ++I) {
        const std::string &Cmd = Pool[R.next() % Pool.size()];
        Clock::time_point Sent = Clock::now();
        (void)Svc.call(Cmd);
        Lat.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - Sent)
                .count()));
      }
    });

  // Effect-set deltas only: the steady-state editing profile, and it keeps
  // the procedure universe fixed so every pooled query stays valid.
  synth::EditGenConfig ECfg;
  ECfg.Seed = 31;
  ECfg.AllowStructural = false;
  ECfg.AllowUniverse = false;
  synth::EditGen Gen(ECfg);
  unsigned EditsApplied = 0;
  for (unsigned I = 0; I != Sh.Edits; ++I) {
    std::shared_ptr<const AnalysisSnapshot> Cur = Svc.snapshot();
    std::optional<incremental::Edit> E = Gen.next(Cur->program());
    if (!E)
      break;
    if (Svc.call(incremental::toScriptLine(Cur->program(), *E)).Ok)
      ++EditsApplied;
  }
  for (std::thread &T : Threads)
    T.join();
  double WallMs = millisSince(Start);

  ServiceCounters C = Svc.counters();
  unsigned TotalReads = PerReader * Readers;
  double Qps = TotalReads / (WallMs / 1000.0);
  std::printf(
      "{\"shape\":\"%s\",\"procs\":%u,\"workers\":%u,\"readers\":%u,"
      "\"reads\":%u,\"edits\":%u,\"wall_ms\":%.1f,\"qps\":%.1f,"
      "\"read_p50_us\":%llu,\"read_p99_us\":%llu,\"read_mean_us\":%llu,"
      "\"published\":%llu,\"read_batches\":%llu,\"batched_reads\":%llu,"
      "\"dedup_saved\":%llu,\"qps_vs_w1\":%.2f}\n",
      Sh.Name, Sh.Procs, Workers, Readers, TotalReads, EditsApplied, WallMs,
      Qps, (unsigned long long)Lat.percentileMicros(50),
      (unsigned long long)Lat.percentileMicros(99),
      (unsigned long long)Lat.meanMicros(), (unsigned long long)C.Published,
      (unsigned long long)C.ReadBatches, (unsigned long long)C.BatchedReads,
      (unsigned long long)C.DedupSaved,
      BaselineQps > 0 ? Qps / BaselineQps : 1.0);
  std::fflush(stdout);
  return Qps;
}

} // namespace

int main() {
  for (const Shape &Sh : Shapes) {
    double BaselineQps = 0;
    for (unsigned Workers : {1u, 2u, 4u}) {
      double Qps = runCell(Sh, Workers, /*Readers=*/4, BaselineQps);
      if (Workers == 1)
        BaselineQps = Qps;
    }
  }
  return 0;
}
