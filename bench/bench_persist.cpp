//===- bench/bench_persist.cpp - Snapshot & WAL throughput --------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Measures the persistence subsystem: snapshot serialization bandwidth,
// WAL append latency (fsync included), and the headline figure — warm
// recovery (snapshot load + WAL replay) against a cold solve of the same
// program.  Like bench_incremental, not google-benchmark based: one JSON
// line per shape:
//
//   {"shape":"fortran-4000","procs":4000,"snapshot_mb":5.061,
//    "save_ms":21.7,"load_ms":16.9,"save_mbps":233.2,"snapshot_mbps":299.4,
//    "wal_records":64,"wal_append_us":118.4,
//    "recovery_ms":19.2,"cold_solve_ms":187.5,"warm_speedup":9.8}
//
// recovery_ms times the full boot path the service takes with --data-dir:
// Store::open (manifest, snapshot decode + CRC + graph cross-check, WAL
// tail recovery), the plane-restoring session constructor, replay of the
// WAL tail, and one GMOD query.  cold_solve_ms builds the same session
// from source and pays the first full solve.  warm_speedup is their
// ratio; the acceptance bar is >1 at 4000 procs.  wal_append_us is the
// mean per-record append with one fsync per append — the worst-case
// (batch size 1) group-commit cost.
//
//===----------------------------------------------------------------------===//

#include "analysis/EffectKind.h"
#include "frontend/Frontend.h"
#include "incremental/AnalysisSession.h"
#include "incremental/Edit.h"
#include "persist/Snapshot.h"
#include "persist/Store.h"
#include "persist/Wal.h"
#include "synth/EditGen.h"
#include "synth/ProgramGen.h"
#include "synth/SourceGen.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

using namespace ipse;

namespace {

using Clock = std::chrono::steady_clock;

struct Shape {
  const char *Name;
  unsigned Procs, Globals;
  std::uint64_t Seed;
  unsigned WalRecords;
};

// fortran-4000 matches bench_incremental's and bench_service's large
// shape; the WAL tail is sized like a busy session between compactions.
const Shape Shapes[] = {
    {"fortran-500", 500, 128, 5, 64},
    {"fortran-4000", 4000, 512, 9, 64},
};

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// One query that a warm restore answers from planes and a cold build
/// answers by solving; both sides of the comparison end on it.
std::size_t touch(incremental::AnalysisSession &S) {
  return S.gmod(ir::ProcId(0), analysis::EffectKind::Mod).count();
}

void die(const std::string &Err) {
  std::fprintf(stderr, "bench_persist: %s\n", Err.c_str());
  std::exit(1);
}

void runShape(const Shape &Sh, const std::string &Dir) {
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  ir::Program P = synth::makeFortranStyleProgram(Sh.Procs, Sh.Globals,
                                                 /*CallsPerProc=*/3, Sh.Seed);

  // Cold: what `serve --program` pays on every restart — compile the
  // MiniProc source back to IR, then the first full solve.  (Source
  // bytes are handed over in memory; a real boot also reads the file.)
  std::string Source = synth::emitMiniProc(P);
  Clock::time_point T0 = Clock::now();
  frontend::CompileResult CR = frontend::compileMiniProc(Source);
  if (!CR.Program)
    die("generated source failed to recompile");
  incremental::SessionOptions SO;
  incremental::AnalysisSession Cold(std::move(*CR.Program), SO);
  touch(Cold);
  double ColdMs = millisSince(T0);

  // Save bandwidth.
  std::string Snap = Dir + "/bench.ipsesnap", Err;
  T0 = Clock::now();
  if (!persist::SnapshotWriter::capture(Snap, Cold, Err))
    die(Err);
  double SaveMs = millisSince(T0);
  double Mb = double(std::filesystem::file_size(Snap)) / (1024.0 * 1024.0);

  // Load bandwidth (decode + CRC + graph cross-check, no session yet).
  persist::SnapshotData Data;
  T0 = Clock::now();
  if (!persist::SnapshotReader::read(Snap, Data, Err))
    die(Err);
  double LoadMs = millisSince(T0);

  // WAL appends, one record per append: every append pays its own fsync.
  persist::StoreOptions StoreOpts;
  persist::Store Store;
  if (!persist::Store::init(Dir, StoreOpts, Cold, Store, Err))
    die(Err);
  synth::EditGenConfig ECfg;
  ECfg.Seed = 31;
  synth::EditGen Gen(ECfg);
  unsigned Appended = 0;
  T0 = Clock::now();
  for (unsigned I = 0; I != Sh.WalRecords; ++I) {
    std::optional<incremental::Edit> E = Gen.next(Cold.program());
    if (!E)
      break;
    incremental::applyEdit(Cold, *E);
    if (!Store.appendEdits({*E}, Err))
      die(Err);
    ++Appended;
  }
  double AppendUs = Appended ? millisSince(T0) * 1000.0 / Appended : 0.0;

  // Warm recovery: exactly the service's --data-dir boot, plus one query.
  T0 = Clock::now();
  persist::Store Reopened;
  persist::RecoveredState RS;
  if (!persist::Store::open(Dir, StoreOpts, Reopened, RS, Err))
    die(Err);
  incremental::SessionOptions RSO;
  RSO.TrackUse = RS.Snapshot.TrackUse;
  incremental::AnalysisSession Warm(std::move(RS.Snapshot.Program), RSO,
                                    std::move(RS.Snapshot.Planes));
  for (const incremental::Edit &E : RS.Tail)
    incremental::applyEdit(Warm, E);
  touch(Warm);
  double RecoveryMs = millisSince(T0);

  std::printf(
      "{\"shape\":\"%s\",\"procs\":%u,\"snapshot_mb\":%.3f,"
      "\"save_ms\":%.1f,\"load_ms\":%.1f,\"save_mbps\":%.1f,"
      "\"snapshot_mbps\":%.1f,\"wal_records\":%u,\"wal_append_us\":%.1f,"
      "\"recovery_ms\":%.1f,\"cold_solve_ms\":%.1f,\"warm_speedup\":%.2f}\n",
      Sh.Name, Sh.Procs, Mb, SaveMs, LoadMs,
      SaveMs > 0 ? Mb / (SaveMs / 1000.0) : 0.0,
      LoadMs > 0 ? Mb / (LoadMs / 1000.0) : 0.0, Appended, AppendUs,
      RecoveryMs, ColdMs, RecoveryMs > 0 ? ColdMs / RecoveryMs : 0.0);
  std::fflush(stdout);
  std::filesystem::remove_all(Dir);
}

} // namespace

int main() {
  std::string Dir =
      std::filesystem::temp_directory_path() / "ipse_bench_persist";
  for (const Shape &Sh : Shapes)
    runShape(Sh, Dir);
  return 0;
}
