//===- bench/bench_parallel.cpp - Parallel batch engine scaling --------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Measures the level-scheduled parallel batch engine (E9) against the
// sequential SideEffectAnalyzer.  Not google-benchmark based: each rep
// times the full MOD pipeline once per cell — the sequential engine and
// every thread count back to back — so host noise and clock drift hit all
// cells of a shape alike instead of biasing whichever ran last.  Each cell
// keeps its minimum over `Reps` and emits one JSON line keyed by "mode":
//
//   {"shape":"fortran-2000","mode":"k4","procs":2001,"threads":4,
//    "wall_ms":48.1,"seq_ms":55.9,"speedup_vs_seq":1.16,
//    "overhead_vs_seq_pct":-13.9,"levels":7,"components":2001,
//    "widest_level":1204,"reps":5}
//
// mode "seq" is the sequential engine itself (the baseline row); "k1",
// "k2", "k4", "k8" are the parallel engine at that lane count.  The
// speedup column is seq_ms / wall_ms; overhead_vs_seq_pct is the signed
// percentage by which the cell is *slower* than sequential.  After the
// per-mode rows each shape emits one "summary" row carrying speedup_k4 —
// the median of per-rep paired seq/k4 ratios (robust against host drift
// in a way a ratio of independent minima is not) and the headline ratio
// ipse-bench-diff hard-gates: with the adaptive
// scheduler (per-level fan-out decisions, lazy worker spawn), asking for
// K=4 must never lose to the sequential engine, on any host.
//
// Shapes cover the schedule spectrum: wide FORTRAN-style programs (many
// components per level — the parallel-friendly regime), a deep chain (one
// component per level — pure barrier overhead, the adversarial case), a
// giant cycle (one SCC — no level parallelism, the representative fast
// path carries it), and a nested tower (multi-level filters on β).
//
// On a single-CPU host the adaptive schedule inlines every level (one
// real lane means a handoff can only add latency), so every K row tracks
// sequential and speedup_k4 sits at ~1.0; on a many-core host the wide
// shapes fan out and speedup_k4 rises above it.  Either way the gate
// holds — that is the point of the scheduler.  See EXPERIMENTS.md E9.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "parallel/ParallelAnalyzer.h"
#include "synth/ProgramGen.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

using namespace ipse;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned Reps = 41;

struct Shape {
  const char *Name;
  ir::Program P;
};

double timeOnceMs(const std::function<void()> &Fn) {
  Clock::time_point Start = Clock::now();
  Fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// One timed sample: \p Inner back-to-back solves, reported per solve.
/// Small shapes finish in tens of microseconds, where a single solve is
/// all scheduler jitter and cache luck; batching enough solves that every
/// sample covers ~1ms of real work is what makes the summary ratios (and
/// the hard gate sitting on them) stable run to run.
double timeBatchMs(unsigned Inner, const std::function<void()> &Fn) {
  Clock::time_point Start = Clock::now();
  for (unsigned I = 0; I != Inner; ++I)
    Fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
             .count() /
         Inner;
}

void runShape(const Shape &Sh) {
  const ir::Program &P = Sh.P;
  constexpr unsigned Ks[] = {1u, 2u, 4u, 8u};
  constexpr std::size_t NumKs = sizeof(Ks) / sizeof(Ks[0]);

  double SeqMs = 0;
  double ParMs[NumKs] = {};
  parallel::GModScheduleStats Stats[NumKs];

  // Calibrate the per-sample batch off one warm-up solve (which also pages
  // the program in before measurement starts).
  double CalMs = timeOnceMs([&] {
    analysis::SideEffectAnalyzer An(P);
    (void)An.gmod(P.main());
  });
  unsigned Inner = 1;
  if (CalMs < 4.0)
    Inner = (unsigned)(4.0 / (CalMs > 0.005 ? CalMs : 0.005)) + 1;

  // One measurement window per shape: every rep runs all five cells in a
  // row, each cell keeping its own minimum.  The summary ratio is instead
  // the median of *per-rep paired* seq/k4 ratios: the two cells of a pair
  // run back to back (in alternating order, seq-first on even reps and
  // k4-first on odd ones), so host-wide drift — frequency steps, noisy
  // neighbours, scheduler episodes — hits both sides of a ratio alike and
  // cancels, and whatever bias remains against the cell that runs second
  // flips sign every rep and drops out of the median.
  auto MeasureSeq = [&] {
    return timeBatchMs(Inner, [&] {
      analysis::SideEffectAnalyzer An(P);
      (void)An.gmod(P.main());
    });
  };
  auto MeasureK = [&](std::size_t KI) {
    return timeBatchMs(Inner, [&] {
      parallel::ParallelAnalyzerOptions Opts;
      Opts.Threads = Ks[KI];
      // Measure raw K: the small-program floor would silently turn
      // every row below the threshold into a K=1 rerun.
      Opts.SmallProgramThreshold = 0;
      parallel::ParallelAnalyzer An(P, Opts);
      Stats[KI] = An.scheduleStats();
    });
  };
  std::vector<double> K4Ratios;
  K4Ratios.reserve(Reps);
  for (unsigned R = 0; R != Reps; ++R) {
    // Four slots per rep — the seq/k4 pair plus the other three lane
    // counts — visited in an order rotated by the rep index, so no cell
    // owns a fixed position (early slots run measurably colder, and a
    // fixed order would bias the per-cell minima apart even though the
    // cells execute identical code on a delegating host).
    constexpr std::size_t Others[3] = {0, 1, 3}; // k1, k2, k8
    for (unsigned Slot = 0; Slot != 4; ++Slot) {
      const unsigned Which = (Slot + R) % 4;
      if (Which == 0) {
        double RepSeqMs, K4Ms;
        if (R % 2 == 0) {
          RepSeqMs = MeasureSeq();
          K4Ms = MeasureK(2);
        } else {
          K4Ms = MeasureK(2);
          RepSeqMs = MeasureSeq();
        }
        if (R == 0 || RepSeqMs < SeqMs)
          SeqMs = RepSeqMs;
        if (R == 0 || K4Ms < ParMs[2])
          ParMs[2] = K4Ms;
        K4Ratios.push_back(RepSeqMs / K4Ms);
      } else {
        const std::size_t KI = Others[(Which - 1 + R) % 3];
        double Ms = MeasureK(KI);
        if (R == 0 || Ms < ParMs[KI])
          ParMs[KI] = Ms;
      }
    }
  }
  std::sort(K4Ratios.begin(), K4Ratios.end());
  double SpeedupK4 = K4Ratios[K4Ratios.size() / 2];

  std::printf("{\"shape\":\"%s\",\"mode\":\"seq\",\"procs\":%u,\"threads\":0,"
              "\"wall_ms\":%.2f,\"seq_ms\":%.2f,\"speedup_vs_seq\":1.00,"
              "\"overhead_vs_seq_pct\":0.0,\"levels\":0,\"components\":0,"
              "\"widest_level\":0,\"reps\":%u}\n",
              Sh.Name, (unsigned)P.numProcs(), SeqMs, SeqMs, Reps);
  for (std::size_t KI = 0; KI != NumKs; ++KI) {
    std::printf(
        "{\"shape\":\"%s\",\"mode\":\"k%u\",\"procs\":%u,\"threads\":%u,"
        "\"wall_ms\":%.2f,"
        "\"seq_ms\":%.2f,\"speedup_vs_seq\":%.2f,"
        "\"overhead_vs_seq_pct\":%.1f,\"levels\":%u,\"components\":%u,"
        "\"widest_level\":%u,\"reps\":%u}\n",
        Sh.Name, Ks[KI], (unsigned)P.numProcs(), Ks[KI], ParMs[KI], SeqMs,
        SeqMs / ParMs[KI], (ParMs[KI] - SeqMs) / SeqMs * 100.0,
        (unsigned)Stats[KI].Levels, (unsigned)Stats[KI].Components,
        (unsigned)Stats[KI].WidestLevel, Reps);
  }
  // The headline row: K=4 against sequential, the ratio the diff tool
  // hard-gates (>= 1 up to noise tolerance, never warn-only).
  std::printf("{\"shape\":\"%s\",\"mode\":\"summary\",\"procs\":%u,"
              "\"speedup_k4\":%.3f,\"reps\":%u}\n",
              Sh.Name, (unsigned)P.numProcs(), SpeedupK4, Reps);
  std::fflush(stdout);
}

} // namespace

int main() {
  std::vector<Shape> Shapes;
  Shapes.push_back(
      {"fortran-2000", synth::makeFortranStyleProgram(2000, 256, 3, 9)});
  Shapes.push_back(
      {"fortran-500", synth::makeFortranStyleProgram(500, 128, 3, 5)});
  Shapes.push_back({"chain-1500", synth::makeChainProgram(1500, 3)});
  Shapes.push_back({"cycle-800", synth::makeCycleProgram(800, 2)});
  Shapes.push_back(
      {"layered-6x80", synth::makeLayeredProgram(6, 80, 3, 2, 64, 7)});
  // Deep enough for dP = 8 multi-level filters, wide enough (~320 procs)
  // that the solve is measured in hundreds of microseconds — a tower of 25
  // procedures finishes in ~20us, where the ratio measures the analyzers'
  // constant setup cost instead of the scheduler.
  Shapes.push_back({"nested-8x40", synth::makeNestedProgram(8, 40, 11)});
  for (const Shape &Sh : Shapes)
    runShape(Sh);
  return 0;
}
