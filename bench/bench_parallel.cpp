//===- bench/bench_parallel.cpp - Parallel batch engine scaling --------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Measures the level-scheduled parallel batch engine (E9) against the
// sequential SideEffectAnalyzer.  Not google-benchmark based: each rep
// times the full MOD pipeline once per cell — the sequential engine and
// every thread count back to back — so host noise and clock drift hit all
// cells of a shape alike instead of biasing whichever ran last.  Each cell
// keeps its minimum over `Reps` and emits one JSON line:
//
//   {"shape":"fortran-2000","procs":2001,"threads":4,"wall_ms":48.1,
//    "seq_ms":55.9,"speedup_vs_seq":1.16,"overhead_vs_seq_pct":-13.9,
//    "levels":7,"components":2001,"widest_level":1204,"reps":5}
//
// threads=0 is the sequential engine itself (the baseline row).  The
// speedup column is seq_ms / wall_ms; overhead_vs_seq_pct is the signed
// percentage by which the cell is *slower* than sequential — the
// acceptance gate is that the threads=1 row stays <= 5%, since the K=1
// configuration runs the same kernels inline with no pool at all.
//
// Shapes cover the schedule spectrum: wide FORTRAN-style programs (many
// components per level — the parallel-friendly regime), a deep chain (one
// component per level — pure barrier overhead, the adversarial case), a
// giant cycle (one SCC — no level parallelism, the representative fast
// path carries it), and a nested tower (multi-level filters on β).
//
// On a single-CPU host every lane shares one core, so speedup is expected
// to be flat (~1.0); the meaningful single-core signals are the threads=1
// overhead and the absence of a cliff at higher K.  See EXPERIMENTS.md E9.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "parallel/ParallelAnalyzer.h"
#include "synth/ProgramGen.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

using namespace ipse;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned Reps = 25;

struct Shape {
  const char *Name;
  ir::Program P;
};

double timeOnceMs(const std::function<void()> &Fn) {
  Clock::time_point Start = Clock::now();
  Fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

void runShape(const Shape &Sh) {
  const ir::Program &P = Sh.P;
  constexpr unsigned Ks[] = {1u, 2u, 4u, 8u};
  constexpr std::size_t NumKs = sizeof(Ks) / sizeof(Ks[0]);

  double SeqMs = 0;
  double ParMs[NumKs] = {};
  parallel::GModScheduleStats Stats[NumKs];

  // One measurement window per shape: every rep runs all five cells in a
  // row, each cell keeping its own minimum.
  for (unsigned R = 0; R != Reps; ++R) {
    double Ms = timeOnceMs([&] {
      analysis::SideEffectAnalyzer An(P);
      (void)An.gmod(P.main());
    });
    if (R == 0 || Ms < SeqMs)
      SeqMs = Ms;
    for (std::size_t KI = 0; KI != NumKs; ++KI) {
      Ms = timeOnceMs([&] {
        parallel::ParallelAnalyzerOptions Opts;
        Opts.Threads = Ks[KI];
        // Measure raw K: the small-program floor would silently turn
        // every row below the threshold into a K=1 rerun.
        Opts.SmallProgramThreshold = 0;
        parallel::ParallelAnalyzer An(P, Opts);
        Stats[KI] = An.scheduleStats();
      });
      if (R == 0 || Ms < ParMs[KI])
        ParMs[KI] = Ms;
    }
  }

  std::printf("{\"shape\":\"%s\",\"procs\":%u,\"threads\":0,"
              "\"wall_ms\":%.2f,\"seq_ms\":%.2f,\"speedup_vs_seq\":1.00,"
              "\"overhead_vs_seq_pct\":0.0,\"levels\":0,\"components\":0,"
              "\"widest_level\":0,\"reps\":%u}\n",
              Sh.Name, (unsigned)P.numProcs(), SeqMs, SeqMs, Reps);
  for (std::size_t KI = 0; KI != NumKs; ++KI) {
    std::printf(
        "{\"shape\":\"%s\",\"procs\":%u,\"threads\":%u,\"wall_ms\":%.2f,"
        "\"seq_ms\":%.2f,\"speedup_vs_seq\":%.2f,"
        "\"overhead_vs_seq_pct\":%.1f,\"levels\":%u,\"components\":%u,"
        "\"widest_level\":%u,\"reps\":%u}\n",
        Sh.Name, (unsigned)P.numProcs(), Ks[KI], ParMs[KI], SeqMs,
        SeqMs / ParMs[KI], (ParMs[KI] - SeqMs) / SeqMs * 100.0,
        (unsigned)Stats[KI].Levels, (unsigned)Stats[KI].Components,
        (unsigned)Stats[KI].WidestLevel, Reps);
  }
  std::fflush(stdout);
}

} // namespace

int main() {
  std::vector<Shape> Shapes;
  Shapes.push_back(
      {"fortran-2000", synth::makeFortranStyleProgram(2000, 256, 3, 9)});
  Shapes.push_back(
      {"fortran-500", synth::makeFortranStyleProgram(500, 128, 3, 5)});
  Shapes.push_back({"chain-1500", synth::makeChainProgram(1500, 3)});
  Shapes.push_back({"cycle-800", synth::makeCycleProgram(800, 2)});
  Shapes.push_back(
      {"layered-6x80", synth::makeLayeredProgram(6, 80, 3, 2, 64, 7)});
  Shapes.push_back({"nested-6x4", synth::makeNestedProgram(6, 4, 11)});
  for (const Shape &Sh : Shapes)
    runShape(Sh);
  return 0;
}
