//===- bench/bench_incremental.cpp - Session vs from-scratch analysis --------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Measures the incremental AnalysisSession against rerunning the full batch
// pipeline after every edit.  Not built on google-benchmark: each (shape,
// edit-mix) cell is timed once over a fixed edit sequence and emitted as one
// JSON line, so results can be diffed and plotted directly:
//
//   {"shape":"fortran","procs":4001,"vars":4513,"mix":"effect-add",
//    "edits":200,"delta_us_per_edit":12.3,"full_us_per_edit":8456.1,
//    "speedup":687.5,"effect_only":200,"intra_scc":0,"recondense":0,
//    "full_rebuild":0}
//
// Edit mixes:
//   effect-add    append LMOD entries (tier-1 deltas; the pure fast path)
//   effect-churn  alternating add/remove of LMOD entries (tier 1)
//   call-churn    add + remove call sites (tier 2; β rebuilds, occasional
//                 re-condensation)
//
// The session runs Mod-only (TrackUse=false) and the baseline is a Mod-only
// SideEffectAnalyzer, so both sides do the same amount of semantic work.
// The full baseline is sampled (every edit on small shapes, every k-th on
// large ones) to keep wall time sane; per-edit cost is the sampled mean.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "incremental/AnalysisSession.h"
#include "synth/ProgramGen.h"

#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

using namespace ipse;
using namespace ipse::ir;

namespace {

struct Shape {
  const char *Name;
  ir::Program (*Make)();
};

ir::Program makeSmall() {
  synth::ProgramGenConfig Cfg;
  Cfg.Seed = 11;
  Cfg.NumProcs = 40;
  Cfg.NumGlobals = 16;
  Cfg.MaxNestDepth = 2;
  return synth::generateProgram(Cfg);
}

ir::Program makeLayered() {
  return synth::makeLayeredProgram(/*Layers=*/6, /*Width=*/20, /*Fanout=*/3,
                                   /*NumFormals=*/2, /*NumGlobals=*/64,
                                   /*Seed=*/7);
}

ir::Program makeMediumFortran() {
  return synth::makeFortranStyleProgram(/*NumProcs=*/500, /*NumGlobals=*/128,
                                        /*CallsPerProc=*/3, /*Seed=*/5);
}

ir::Program makeLargeFortran() {
  return synth::makeFortranStyleProgram(/*NumProcs=*/4000, /*NumGlobals=*/512,
                                        /*CallsPerProc=*/3, /*Seed=*/9);
}

const Shape Shapes[] = {
    {"small", makeSmall},
    {"layered", makeLayered},
    {"fortran-500", makeMediumFortran},
    {"fortran-4000", makeLargeFortran},
};

using Clock = std::chrono::steady_clock;

double microsSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - Start)
      .count();
}

/// One pre-planned edit: an LMOD toggle or a call-site add/remove.
struct PlannedEdit {
  enum Op { AddMod, RemoveMod, AddCall, RemoveLastCall } Kind;
  StmtId Stmt;
  VarId Var;
  ProcId Callee;
  std::vector<Actual> Actuals;
};

/// Plans \p Count edits for \p Mix against \p P.  Planning is done up front
/// so the timed loop measures only session work.
std::vector<PlannedEdit> planEdits(const ir::Program &P,
                                   const std::string &Mix, unsigned Count,
                                   std::uint64_t Seed) {
  std::mt19937_64 R(Seed);
  auto pick = [&](std::uint32_t N) {
    return static_cast<std::uint32_t>(R() % N);
  };

  // Statements that belong to non-main procedures (so edits actually
  // perturb interprocedural propagation) and the globals they can touch.
  std::vector<StmtId> Stmts;
  for (std::uint32_t I = 0; I != P.numStmts(); ++I)
    if (P.stmt(StmtId(I)).Parent != P.main())
      Stmts.push_back(StmtId(I));
  std::vector<VarId> Globals = P.proc(P.main()).Locals;

  std::vector<PlannedEdit> Plan;
  Plan.reserve(Count);
  for (unsigned I = 0; I != Count; ++I) {
    PlannedEdit E;
    if (Mix == "effect-add") {
      E.Kind = PlannedEdit::AddMod;
      E.Stmt = Stmts[pick(static_cast<std::uint32_t>(Stmts.size()))];
      E.Var = Globals[pick(static_cast<std::uint32_t>(Globals.size()))];
    } else if (Mix == "effect-churn") {
      // Pairs: add a bit, then remove the same bit — GMOD shrinkage forces
      // full dirty-cone re-evaluation, not just monotone growth.
      if ((I & 1) == 0) {
        E.Kind = PlannedEdit::AddMod;
        E.Stmt = Stmts[pick(static_cast<std::uint32_t>(Stmts.size()))];
        E.Var = Globals[pick(static_cast<std::uint32_t>(Globals.size()))];
      } else {
        E = Plan.back();
        E.Kind = PlannedEdit::RemoveMod;
      }
    } else { // call-churn
      if ((I & 1) == 0) {
        E.Kind = PlannedEdit::AddCall;
        E.Stmt = Stmts[pick(static_cast<std::uint32_t>(Stmts.size()))];
        // Callee must be visible from the statement's procedure; top-level
        // procedures (parent == main) always are.  Skip main itself and
        // avoid parameterized callees so no actual planning is needed:
        // retry a few times, else fall back to a harmless LMOD add.
        E.Callee = ProcId();
        for (int Try = 0; Try != 16 && !E.Callee.isValid(); ++Try) {
          ProcId Cand(1 + pick(P.numProcs() - 1));
          if (P.proc(Cand).Parent == P.main() &&
              P.proc(Cand).Formals.empty())
            E.Callee = Cand;
        }
        if (!E.Callee.isValid()) {
          E.Kind = PlannedEdit::AddMod;
          E.Var = Globals[pick(static_cast<std::uint32_t>(Globals.size()))];
        }
      } else {
        E.Kind = Plan.back().Kind == PlannedEdit::AddCall
                     ? PlannedEdit::RemoveLastCall
                     : PlannedEdit::RemoveMod;
        if (E.Kind == PlannedEdit::RemoveMod) {
          E.Stmt = Plan.back().Stmt;
          E.Var = Plan.back().Var;
        }
      }
    }
    Plan.push_back(std::move(E));
  }
  return Plan;
}

void applyPlanned(incremental::AnalysisSession &S, const PlannedEdit &E) {
  switch (E.Kind) {
  case PlannedEdit::AddMod:
    S.addMod(E.Stmt, E.Var);
    break;
  case PlannedEdit::RemoveMod:
    S.removeMod(E.Stmt, E.Var);
    break;
  case PlannedEdit::AddCall:
    S.addCall(E.Stmt, E.Callee, {});
    break;
  case PlannedEdit::RemoveLastCall:
    S.removeCall(CallSiteId(S.program().numCallSites() - 1));
    break;
  }
}

void runCell(const Shape &Sh, const std::string &Mix, unsigned Edits) {
  ir::Program P = Sh.Make();
  std::vector<PlannedEdit> Plan = planEdits(P, Mix, Edits, /*Seed=*/42);

  // --- Incremental: apply each edit, query GMOD(main) to force a flush.
  incremental::SessionOptions Opts;
  Opts.TrackUse = false;
  incremental::AnalysisSession S(P, Opts);
  (void)S.gmod(P.main());
  Clock::time_point Start = Clock::now();
  for (const PlannedEdit &E : Plan) {
    applyPlanned(S, E);
    (void)S.gmod(S.program().main());
  }
  double DeltaUs = microsSince(Start) / Edits;
  const incremental::SessionStats &St = S.stats();

  // --- Full: rerun a Mod-only SideEffectAnalyzer over the current (fully
  // edited) program.  Sampled so large shapes finish in reasonable time.
  const ir::Program &Edited = S.program();
  unsigned Samples = Edited.numProcs() > 1000 ? 5 : 20;
  analysis::AnalyzerOptions AOpts; // Mod-only, Auto algorithm.
  Start = Clock::now();
  for (unsigned I = 0; I != Samples; ++I) {
    analysis::SideEffectAnalyzer Full(Edited, AOpts);
    (void)Full.gmod(Edited.main());
  }
  double FullUs = microsSince(Start) / Samples;

  std::printf("{\"shape\":\"%s\",\"procs\":%u,\"vars\":%u,\"calls\":%u,"
              "\"mix\":\"%s\",\"edits\":%u,"
              "\"delta_us_per_edit\":%.2f,\"full_us_per_edit\":%.2f,"
              "\"speedup\":%.1f,"
              "\"effect_only\":%llu,\"intra_scc\":%llu,"
              "\"recondense\":%llu,\"full_rebuild\":%llu}\n",
              Sh.Name, static_cast<unsigned>(Edited.numProcs()),
              static_cast<unsigned>(Edited.numVars()),
              static_cast<unsigned>(Edited.numCallSites()), Mix.c_str(),
              Edits, DeltaUs, FullUs, FullUs / DeltaUs,
              (unsigned long long)St.EffectOnlyFlushes,
              (unsigned long long)St.IntraSccFlushes,
              (unsigned long long)St.Recondensations,
              (unsigned long long)St.FullRebuilds);
  std::fflush(stdout);
}

} // namespace

int main() {
  for (const Shape &Sh : Shapes)
    for (const char *Mix : {"effect-add", "effect-churn", "call-churn"})
      runCell(Sh, Mix, /*Edits=*/200);
  return 0;
}
