//===- bench/bench_rmod.cpp - E1: Figure 1 vs bit-vector RMOD ------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Experiment E1 (DESIGN.md): the §3.2 claim.  The binding-multi-graph
// algorithm of Figure 1 solves RMOD in O(Nβ + Eβ) *simple boolean* steps;
// the prior swift-style approach needs bit-vector operations on vectors of
// length Nβ over the call graph, and round-robin iteration on β pays the
// chain-depth multiplier.  Series to compare with the paper: linear time
// growth for Figure 1; growing per-step cost (word ops) for the bit-vector
// baseline; superlinear growth for round-robin on deep chains.
//
// Counters: steps   = simple boolean steps (Figure 1 / iterative),
//           bvsteps = bit-vector operations (swift-style),
//           words   = 64-bit words touched by bit-vector ops (swift-style).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baselines/RModIterative.h"
#include "baselines/SwiftStyleSolver.h"
#include "synth/ProgramGen.h"

#include <benchmark/benchmark.h>

using namespace ipse;
using namespace ipse::bench;

namespace {

/// Parameter-chain program: main -> p1 -> ... -> pN, k formals passed
/// straight through; the worst case for round-robin.
PipelineInput chainInput(unsigned N, unsigned K) {
  return PipelineInput(synth::makeChainProgram(N, K));
}

/// One big binding cycle of length N.
PipelineInput cycleInput(unsigned N, unsigned K) {
  return PipelineInput(synth::makeCycleProgram(N, K));
}

void BM_Figure1_Chain(benchmark::State &State) {
  PipelineInput In = chainInput(static_cast<unsigned>(State.range(0)), 3);
  std::uint64_t Steps = 0;
  for (auto _ : State) {
    analysis::RModResult R = analysis::solveRMod(In.P, *In.BG, *In.Local);
    benchmark::DoNotOptimize(R);
    Steps = R.BooleanSteps;
  }
  State.counters["steps"] = static_cast<double>(Steps);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Figure1_Chain)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_IterativeBeta_Chain(benchmark::State &State) {
  PipelineInput In = chainInput(static_cast<unsigned>(State.range(0)), 3);
  std::uint64_t Steps = 0;
  for (auto _ : State) {
    analysis::RModResult R =
        baselines::solveRModIterative(In.P, *In.BG, *In.Local);
    benchmark::DoNotOptimize(R);
    Steps = R.BooleanSteps;
  }
  State.counters["steps"] = static_cast<double>(Steps);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_IterativeBeta_Chain)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Complexity();

void BM_SwiftBitVector_Chain(benchmark::State &State) {
  PipelineInput In = chainInput(static_cast<unsigned>(State.range(0)), 3);
  std::uint64_t BvSteps = 0, Words = 0;
  for (auto _ : State) {
    EffectSet::resetOpCount();
    baselines::SwiftRModResult R =
        baselines::solveSwiftRMod(In.P, *In.CG, *In.Masks, *In.Local);
    benchmark::DoNotOptimize(R);
    BvSteps = R.BitVectorSteps;
    Words = EffectSet::opCount();
  }
  State.counters["bvsteps"] = static_cast<double>(BvSteps);
  State.counters["words"] = static_cast<double>(Words);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SwiftBitVector_Chain)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Complexity();

void BM_Figure1_Cycle(benchmark::State &State) {
  PipelineInput In = cycleInput(static_cast<unsigned>(State.range(0)), 3);
  for (auto _ : State) {
    analysis::RModResult R = analysis::solveRMod(In.P, *In.BG, *In.Local);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Figure1_Cycle)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_SwiftBitVector_Cycle(benchmark::State &State) {
  PipelineInput In = cycleInput(static_cast<unsigned>(State.range(0)), 3);
  for (auto _ : State) {
    baselines::SwiftRModResult R =
        baselines::solveSwiftRMod(In.P, *In.CG, *In.Masks, *In.Local);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SwiftBitVector_Cycle)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Complexity();

/// Average-parameter-count sweep at fixed N: the "k" of §3.1.  Figure 1's
/// cost grows with k (β grows by the factor k); the bit-vector baseline's
/// per-step cost grows with total formal count as well.
void BM_Figure1_ParamCount(benchmark::State &State) {
  PipelineInput In = chainInput(2048, static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    analysis::RModResult R = analysis::solveRMod(In.P, *In.BG, *In.Local);
    benchmark::DoNotOptimize(R);
  }
  State.counters["Ebeta"] = static_cast<double>(In.BG->numEdges());
}
BENCHMARK(BM_Figure1_ParamCount)->DenseRange(1, 17, 4);

void BM_SwiftBitVector_ParamCount(benchmark::State &State) {
  PipelineInput In = chainInput(2048, static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    baselines::SwiftRModResult R =
        baselines::solveSwiftRMod(In.P, *In.CG, *In.Masks, *In.Local);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SwiftBitVector_ParamCount)->DenseRange(1, 17, 4);

/// Random parameter-heavy programs (β with many overlapping components).
void BM_Figure1_Random(benchmark::State &State) {
  synth::ProgramGenConfig Cfg;
  Cfg.Seed = 42;
  Cfg.NumProcs = static_cast<unsigned>(State.range(0));
  Cfg.NumGlobals = 4;
  Cfg.MaxFormals = 4;
  Cfg.FormalActualBiasPct = 80;
  PipelineInput In{synth::generateProgram(Cfg)};
  for (auto _ : State) {
    analysis::RModResult R = analysis::solveRMod(In.P, *In.BG, *In.Local);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Figure1_Random)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

} // namespace
