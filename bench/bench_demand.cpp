//===- bench/bench_demand.cpp - Demand-driven query cost vs batch solve ------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Measures the demand-driven engine's promise: a cold single-procedure
// query should cost O(region), not O(program).  Each shape is timed four
// ways and emitted as one JSON line:
//
//   {"shape":"chain-100k","procs":100001,"vars":256,"query":"sub99950",
//    "batch_us":48211.0,"open_us":9123.0,"cold_query_us":35.2,
//    "warm_query_us":0.1,"region_procs":51,"batch_over_cold":1369.4}
//
//   batch_us        full SideEffectAnalyzer solve + GMOD(main)
//   open_us         DemandSession construction (structure only, no solve)
//   cold_query_us   first gmod(q) on a fresh session (region solve)
//   warm_query_us   repeat gmod(q) (memoized plane read)
//   region_procs    procedures the cold query actually solved
//
// Shapes:
//   fortran-4000   the random-call-graph shape shared with the other
//                  benches.  Calls are drawn from the whole program, so a
//                  single query's forward closure is most of it — the
//                  honest adversarial case where demand buys little.
//   chain-4000     forward DAG (proc I calls I+1, I+7, I+13): a query
//   chain-100k     near the tail reaches a few dozen procedures, so the
//                  cold query is orders of magnitude below batch.
//
// region_procs is deterministic (same program, same query, same closure)
// and gates tight in ipse-bench-diff; the wall-clock columns gate loose.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "demand/DemandSession.h"
#include "ir/ProgramBuilder.h"
#include "synth/ProgramGen.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace ipse;
using namespace ipse::ir;

namespace {

using Clock = std::chrono::steady_clock;

double microsSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - Start)
      .count();
}

/// Forward DAG: proc I calls I+1, I+7, I+13 (when they exist), so the
/// forward closure of a proc K steps from the tail is O(K).
ir::Program makeChain(unsigned NumProcs, unsigned NumGlobals) {
  ProgramBuilder B;
  ProcId Main = B.createMain("main");
  std::vector<VarId> Globals;
  for (unsigned G = 0; G != NumGlobals; ++G)
    Globals.push_back(B.addGlobal("g" + std::to_string(G)));
  std::vector<ProcId> Procs;
  for (unsigned I = 0; I != NumProcs; ++I)
    Procs.push_back(B.createProc("sub" + std::to_string(I), Main));
  for (unsigned I = 0; I != NumProcs; ++I) {
    StmtId S = B.addStmt(Procs[I]);
    B.addMod(S, Globals[I % NumGlobals]);
    B.addUse(S, Globals[(I * 7 + 1) % NumGlobals]);
    for (unsigned Step : {1u, 7u, 13u})
      if (I + Step < NumProcs)
        B.addCallStmt(Procs[I], Procs[I + Step], {});
  }
  B.addCallStmt(Main, Procs[0], {});
  return B.finish();
}

struct Shape {
  const char *Name;
  ir::Program Prog;
  /// The cold-query target: near the tail on chains (small closure),
  /// the last procedure on fortran (whatever its closure happens to be).
  ProcId Query;
};

void runCell(const Shape &Sh) {
  const ir::Program &P = Sh.Prog;

  // --- Batch: the full pipeline, Mod-only to match the demand session.
  unsigned Samples = P.numProcs() > 10000 ? 3 : 10;
  analysis::AnalyzerOptions AOpts;
  Clock::time_point Start = Clock::now();
  for (unsigned I = 0; I != Samples; ++I) {
    analysis::SideEffectAnalyzer Full(P, AOpts);
    (void)Full.gmod(P.main());
  }
  double BatchUs = microsSince(Start) / Samples;

  // --- Demand: open (structure only), cold query, warm repeat.
  demand::DemandOptions DOpts;
  DOpts.TrackUse = false;
  Start = Clock::now();
  demand::DemandSession S(P, DOpts);
  double OpenUs = microsSince(Start);

  Start = Clock::now();
  (void)S.gmod(Sh.Query);
  double ColdUs = microsSince(Start);
  std::uint64_t RegionProcs = S.stats().RegionProcs;

  unsigned WarmReps = 1000;
  Start = Clock::now();
  for (unsigned I = 0; I != WarmReps; ++I)
    (void)S.gmod(Sh.Query);
  double WarmUs = microsSince(Start) / WarmReps;

  std::printf("{\"shape\":\"%s\",\"procs\":%u,\"vars\":%u,"
              "\"query\":\"%s\",\"batch_us\":%.1f,\"open_us\":%.1f,"
              "\"cold_query_us\":%.2f,\"warm_query_us\":%.3f,"
              "\"region_procs\":%llu,\"batch_over_cold\":%.1f}\n",
              Sh.Name, static_cast<unsigned>(P.numProcs()),
              static_cast<unsigned>(P.numVars()),
              P.name(Sh.Query).c_str(), BatchUs, OpenUs, ColdUs,
              WarmUs, (unsigned long long)RegionProcs,
              ColdUs > 0 ? BatchUs / ColdUs : 0.0);
  std::fflush(stdout);
}

} // namespace

int main() {
  {
    ir::Program P = synth::makeFortranStyleProgram(
        /*NumProcs=*/4000, /*NumGlobals=*/512, /*CallsPerProc=*/3,
        /*Seed=*/9);
    ProcId Query(P.numProcs() - 1);
    runCell({"fortran-4000", std::move(P), Query});
  }
  {
    ir::Program P = makeChain(/*NumProcs=*/4000, /*NumGlobals=*/256);
    ProcId Query(P.numProcs() - 50);
    runCell({"chain-4000", std::move(P), Query});
  }
  {
    ir::Program P = makeChain(/*NumProcs=*/100000, /*NumGlobals=*/256);
    ProcId Query(P.numProcs() - 50);
    runCell({"chain-100k", std::move(P), Query});
  }
  return 0;
}
