//===- bench/bench_binding_graph.cpp - E5: β size and construction -------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Experiment E5 (DESIGN.md): §3.1's size argument.  β relates to the call
// multi-graph C by Nβ ≤ µf N_C and Eβ ≤ µa E_C (µf / µa: average formal /
// actual counts), nodes exist only when incident to an edge (2 Eβ ≥ Nβ),
// and construction is linear in the program.  The counters report the
// measured sizes so the ratios can be read off directly.
//
//===----------------------------------------------------------------------===//

#include "graph/BindingGraph.h"
#include "graph/CallGraph.h"
#include "synth/ProgramGen.h"

#include <benchmark/benchmark.h>

using namespace ipse;

namespace {

ir::Program paramProgram(unsigned N, unsigned MaxFormals, unsigned BiasPct) {
  synth::ProgramGenConfig Cfg;
  Cfg.Seed = 11;
  Cfg.NumProcs = N;
  Cfg.NumGlobals = 8;
  Cfg.MaxFormals = MaxFormals;
  Cfg.MaxCallsPerProc = 4;
  Cfg.FormalActualBiasPct = BiasPct;
  return synth::generateProgram(Cfg);
}

/// Construction time, size sweep: must be linear.
void BM_BuildBeta_SizeSweep(benchmark::State &State) {
  ir::Program P = paramProgram(static_cast<unsigned>(State.range(0)), 4, 60);
  for (auto _ : State) {
    graph::BindingGraph BG(P);
    benchmark::DoNotOptimize(BG.numEdges());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BuildBeta_SizeSweep)
    ->RangeMultiplier(4)
    ->Range(64, 65536)
    ->Complexity();

/// The k sweep of §3.1: larger average parameter lists grow β by the
/// factor k relative to C.  Counters expose Nβ, Eβ, N_C, E_C.
void BM_BetaSize_KSweep(benchmark::State &State) {
  ir::Program P =
      paramProgram(2048, static_cast<unsigned>(State.range(0)), 70);
  graph::CallGraph CG(P);
  std::size_t NBeta = 0, EBeta = 0;
  for (auto _ : State) {
    graph::BindingGraph BG(P);
    NBeta = BG.numNodes();
    EBeta = BG.numEdges();
    benchmark::DoNotOptimize(EBeta);
  }
  State.counters["Nbeta"] = static_cast<double>(NBeta);
  State.counters["Ebeta"] = static_cast<double>(EBeta);
  State.counters["Nc"] = static_cast<double>(CG.graph().numNodes());
  State.counters["Ec"] = static_cast<double>(CG.graph().numEdges());
}
BENCHMARK(BM_BetaSize_KSweep)->DenseRange(1, 17, 2);

/// The bias sweep: fewer formal actuals → sparser β (nodes only when an
/// edge exists), regardless of how many formals procedures declare.
void BM_BetaSize_BiasSweep(benchmark::State &State) {
  ir::Program P =
      paramProgram(2048, 4, static_cast<unsigned>(State.range(0)));
  std::size_t NBeta = 0, EBeta = 0;
  for (auto _ : State) {
    graph::BindingGraph BG(P);
    NBeta = BG.numNodes();
    EBeta = BG.numEdges();
    benchmark::DoNotOptimize(EBeta);
  }
  State.counters["Nbeta"] = static_cast<double>(NBeta);
  State.counters["Ebeta"] = static_cast<double>(EBeta);
}
BENCHMARK(BM_BetaSize_BiasSweep)->DenseRange(0, 100, 20);

/// Call-graph construction for reference (same linear claim).
void BM_BuildCallGraph(benchmark::State &State) {
  ir::Program P = paramProgram(static_cast<unsigned>(State.range(0)), 4, 60);
  for (auto _ : State) {
    graph::CallGraph CG(P);
    benchmark::DoNotOptimize(CG.graph().numEdges());
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BuildCallGraph)
    ->RangeMultiplier(4)
    ->Range(64, 65536)
    ->Complexity();

} // namespace
