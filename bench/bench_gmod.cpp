//===- bench/bench_gmod.cpp - E2: findgmod vs data-flow baselines --------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Experiment E2 (DESIGN.md): Theorem 2's claim that findgmod needs
// O(E + N) bit-vector steps — one equation-(4) application per call-graph
// edge and one component adjustment per procedure — against the classical
// solvers of the same system: Kam–Ullman round-robin (O(rounds * E)),
// worklist, and the swift-style condensation solver.  The "words" counter
// (64-bit words touched by all bit-vector ops) is the machine-independent
// work measure; "rounds" shows why round-robin loses on deep graphs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/GMod.h"
#include "baselines/IterativeSolver.h"
#include "baselines/SwiftStyleSolver.h"
#include "baselines/WorklistSolver.h"
#include "synth/ProgramGen.h"

#include <benchmark/benchmark.h>

using namespace ipse;
using namespace ipse::bench;

namespace {

/// FORTRAN-flavored workload: N procedures, N/4 globals (bit vectors grow
/// with program size, the paper's assumption), 3 calls each, recursion
/// allowed.
PipelineInput fortranInput(unsigned N) {
  return PipelineInput(
      synth::makeFortranStyleProgram(N, std::max(4u, N / 4), 3, 7));
}

/// Deep call chain: the adversarial case for round-robin iteration.
PipelineInput chainInput(unsigned N) {
  return PipelineInput(synth::makeChainProgram(N, 2));
}

void BM_FindGMod(benchmark::State &State) {
  PipelineInput In = fortranInput(static_cast<unsigned>(State.range(0)));
  std::uint64_t Words = 0;
  for (auto _ : State) {
    EffectSet::resetOpCount();
    analysis::GModResult R =
        analysis::solveGMod(In.P, *In.CG, *In.Masks, In.IModPlus);
    benchmark::DoNotOptimize(R);
    Words = EffectSet::opCount();
  }
  State.counters["words"] = static_cast<double>(Words);
  // Bit-vector *steps* (vector-level operations): the unit of Theorem 2.
  std::size_t WordsPerVec = (In.P.numVars() + 63) / 64;
  State.counters["bvsteps"] = static_cast<double>(Words / WordsPerVec);
  State.counters["E"] = static_cast<double>(In.P.numCallSites());
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_FindGMod)->RangeMultiplier(2)->Range(64, 4096)->Complexity();

void BM_RoundRobin(benchmark::State &State) {
  PipelineInput In = fortranInput(static_cast<unsigned>(State.range(0)));
  std::uint64_t Words = 0, Rounds = 0;
  for (auto _ : State) {
    EffectSet::resetOpCount();
    baselines::IterativeResult R =
        baselines::solveIterative(In.P, *In.CG, *In.Masks, *In.Local);
    benchmark::DoNotOptimize(R);
    Words = EffectSet::opCount();
    Rounds = R.Rounds;
  }
  State.counters["words"] = static_cast<double>(Words);
  State.counters["rounds"] = static_cast<double>(Rounds);
  std::size_t WordsPerVec = (In.P.numVars() + 63) / 64;
  State.counters["bvsteps"] = static_cast<double>(Words / WordsPerVec);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_RoundRobin)->RangeMultiplier(2)->Range(64, 4096)->Complexity();

void BM_Worklist(benchmark::State &State) {
  PipelineInput In = fortranInput(static_cast<unsigned>(State.range(0)));
  std::uint64_t Words = 0;
  for (auto _ : State) {
    EffectSet::resetOpCount();
    baselines::IterativeResult R =
        baselines::solveWorklist(In.P, *In.CG, *In.Masks, *In.Local);
    benchmark::DoNotOptimize(R);
    Words = EffectSet::opCount();
  }
  State.counters["words"] = static_cast<double>(Words);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Worklist)->RangeMultiplier(2)->Range(64, 4096)->Complexity();

void BM_SwiftTwoPhase(benchmark::State &State) {
  PipelineInput In = fortranInput(static_cast<unsigned>(State.range(0)));
  std::uint64_t Words = 0;
  for (auto _ : State) {
    EffectSet::resetOpCount();
    baselines::SwiftResult R =
        baselines::solveSwift(In.P, *In.CG, *In.Masks, *In.Local);
    benchmark::DoNotOptimize(R);
    Words = EffectSet::opCount();
  }
  State.counters["words"] = static_cast<double>(Words);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SwiftTwoPhase)->RangeMultiplier(2)->Range(64, 4096)->Complexity();

// The deep-chain series: round-robin needs O(N) rounds, findgmod one DFS.
void BM_FindGMod_Chain(benchmark::State &State) {
  PipelineInput In = chainInput(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    analysis::GModResult R =
        analysis::solveGMod(In.P, *In.CG, *In.Masks, In.IModPlus);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_FindGMod_Chain)->RangeMultiplier(2)->Range(64, 4096)->Complexity();

void BM_RoundRobin_Chain(benchmark::State &State) {
  PipelineInput In = chainInput(static_cast<unsigned>(State.range(0)));
  std::uint64_t Rounds = 0;
  for (auto _ : State) {
    baselines::IterativeResult R =
        baselines::solveIterative(In.P, *In.CG, *In.Masks, *In.Local);
    benchmark::DoNotOptimize(R);
    Rounds = R.Rounds;
  }
  State.counters["rounds"] = static_cast<double>(Rounds);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_RoundRobin_Chain)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity();

/// Edge-count sweep at fixed N: findgmod's work is O(E + N), so doubling
/// the call sites should roughly double its cost.
void BM_FindGMod_EdgeSweep(benchmark::State &State) {
  PipelineInput In{synth::makeFortranStyleProgram(
      1024, 256, static_cast<unsigned>(State.range(0)), 7)};
  for (auto _ : State) {
    analysis::GModResult R =
        analysis::solveGMod(In.P, *In.CG, *In.Masks, In.IModPlus);
    benchmark::DoNotOptimize(R);
  }
  State.counters["E"] = static_cast<double>(In.P.numCallSites());
}
BENCHMARK(BM_FindGMod_EdgeSweep)->DenseRange(1, 13, 3);

} // namespace
