//===- bench/bench_multilevel.cpp - E4: §4 nesting-depth scaling ---------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Experiment E4 (DESIGN.md): §4's claim that maintaining lowlink *vectors*
// inside one depth-first search removes dP as a multiplier of E_C —
// O(E + dP N) bit-vector steps for the combined algorithm versus
// O(dP (E + N)) for repeating Figure 2 once per nesting level.  The series
// sweeps dP at (roughly) fixed N and E; the combined curve should stay
// nearly flat while the repeated one climbs linearly in dP.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/MultiLevelGMod.h"
#include "synth/ProgramGen.h"

#include <benchmark/benchmark.h>

using namespace ipse;
using namespace ipse::bench;

namespace {

/// Nested workload with dP = Depth; ProcsPerLevel balances total N so the
/// sweep varies depth, not size: N ≈ Depth * PerLevel.
PipelineInput nestedInput(unsigned Depth, unsigned TotalProcs) {
  unsigned PerLevel = std::max(1u, TotalProcs / Depth);
  return PipelineInput(synth::makeNestedProgram(Depth, PerLevel, 17));
}

void BM_Repeated_DepthSweep(benchmark::State &State) {
  PipelineInput In =
      nestedInput(static_cast<unsigned>(State.range(0)), 256);
  std::uint64_t Words = 0;
  for (auto _ : State) {
    EffectSet::resetOpCount();
    analysis::GModResult R = analysis::solveMultiLevelRepeated(
        In.P, *In.CG, *In.Masks, In.IModPlus);
    benchmark::DoNotOptimize(R);
    Words = EffectSet::opCount();
  }
  State.counters["dP"] = static_cast<double>(In.P.maxProcLevel());
  State.counters["N"] = static_cast<double>(In.P.numProcs());
  State.counters["words"] = static_cast<double>(Words);
}
BENCHMARK(BM_Repeated_DepthSweep)->DenseRange(1, 33, 4);

void BM_Combined_DepthSweep(benchmark::State &State) {
  PipelineInput In =
      nestedInput(static_cast<unsigned>(State.range(0)), 256);
  std::uint64_t Words = 0;
  for (auto _ : State) {
    EffectSet::resetOpCount();
    analysis::GModResult R = analysis::solveMultiLevelCombined(
        In.P, *In.CG, *In.Masks, In.IModPlus);
    benchmark::DoNotOptimize(R);
    Words = EffectSet::opCount();
  }
  State.counters["dP"] = static_cast<double>(In.P.maxProcLevel());
  State.counters["N"] = static_cast<double>(In.P.numProcs());
  State.counters["words"] = static_cast<double>(Words);
}
BENCHMARK(BM_Combined_DepthSweep)->DenseRange(1, 33, 4);

/// Size sweep at fixed depth: both variants should scale linearly in N.
void BM_Repeated_SizeSweep(benchmark::State &State) {
  PipelineInput In = nestedInput(6, static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    analysis::GModResult R = analysis::solveMultiLevelRepeated(
        In.P, *In.CG, *In.Masks, In.IModPlus);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Repeated_SizeSweep)
    ->RangeMultiplier(2)
    ->Range(32, 2048)
    ->Complexity();

void BM_Combined_SizeSweep(benchmark::State &State) {
  PipelineInput In = nestedInput(6, static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    analysis::GModResult R = analysis::solveMultiLevelCombined(
        In.P, *In.CG, *In.Masks, In.IModPlus);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Combined_SizeSweep)
    ->RangeMultiplier(2)
    ->Range(32, 2048)
    ->Complexity();

/// dP = 1 sanity point: both must essentially match findgmod's cost.
void BM_Combined_TwoLevel(benchmark::State &State) {
  PipelineInput In{
      synth::makeFortranStyleProgram(static_cast<unsigned>(State.range(0)),
                                     64, 3, 7)};
  for (auto _ : State) {
    analysis::GModResult R = analysis::solveMultiLevelCombined(
        In.P, *In.CG, *In.Masks, In.IModPlus);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Combined_TwoLevel)
    ->RangeMultiplier(2)
    ->Range(64, 2048)
    ->Complexity();

void BM_FindGMod_TwoLevel(benchmark::State &State) {
  PipelineInput In{
      synth::makeFortranStyleProgram(static_cast<unsigned>(State.range(0)),
                                     64, 3, 7)};
  for (auto _ : State) {
    analysis::GModResult R =
        analysis::solveGMod(In.P, *In.CG, *In.Masks, In.IModPlus);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_FindGMod_TwoLevel)
    ->RangeMultiplier(2)
    ->Range(64, 2048)
    ->Complexity();

} // namespace
