//===- bench/BenchUtil.h - Shared benchmark scaffolding ---------*- C++ -*-===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the E1–E6 benchmark binaries: a bundled "pipeline
/// input" (masks, graphs, local effects, IMOD+) built once per workload so
/// each benchmark times exactly the algorithm under study.
///
//===----------------------------------------------------------------------===//

#ifndef IPSE_BENCH_BENCHUTIL_H
#define IPSE_BENCH_BENCHUTIL_H

#include "analysis/IModPlus.h"
#include "analysis/LocalEffects.h"
#include "analysis/RMod.h"
#include "analysis/VarMasks.h"
#include "graph/BindingGraph.h"
#include "graph/CallGraph.h"
#include "ir/Program.h"

#include <memory>

namespace ipse {
namespace bench {

/// Everything the GMOD solvers consume, precomputed once.
struct PipelineInput {
  ir::Program P;
  std::unique_ptr<analysis::VarMasks> Masks;
  std::unique_ptr<graph::CallGraph> CG;
  std::unique_ptr<graph::BindingGraph> BG;
  std::unique_ptr<analysis::LocalEffects> Local;
  analysis::RModResult RMod;
  std::vector<EffectSet> IModPlus;

  explicit PipelineInput(ir::Program Prog) : P(std::move(Prog)) {
    Masks = std::make_unique<analysis::VarMasks>(P);
    CG = std::make_unique<graph::CallGraph>(P);
    BG = std::make_unique<graph::BindingGraph>(P);
    Local = std::make_unique<analysis::LocalEffects>(
        P, *Masks, analysis::EffectKind::Mod);
    RMod = analysis::solveRMod(P, *BG, *Local);
    IModPlus = analysis::computeIModPlus(P, *Local, RMod);
  }
};

} // namespace bench
} // namespace ipse

#endif // IPSE_BENCH_BENCHUTIL_H
