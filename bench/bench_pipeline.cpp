//===- bench/bench_pipeline.cpp - E3: end-to-end MOD computation ---------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Experiment E3 (DESIGN.md): §5's claim that the whole MOD computation —
// β construction, RMOD, IMOD+, GMOD, and the DMOD projection at every call
// site — runs in O(N (E + N)) time without aliasing, and that the alias
// factoring step adds time linear in the number of alias pairs.
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasEstimator.h"
#include "analysis/DMod.h"
#include "analysis/SideEffectAnalyzer.h"
#include "ir/AliasInfo.h"
#include "synth/ProgramGen.h"

#include <benchmark/benchmark.h>

using namespace ipse;

namespace {

ir::Program sizedProgram(unsigned N, std::uint64_t Seed = 3) {
  synth::ProgramGenConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.NumProcs = N;
  Cfg.NumGlobals = std::max(4u, N / 8);
  Cfg.MaxFormals = 3;
  Cfg.MaxCallsPerProc = 4;
  return synth::generateProgram(Cfg);
}

/// Whole pipeline, GMOD included, DMOD for every statement.
void BM_FullPipeline(benchmark::State &State) {
  ir::Program P = sizedProgram(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    analysis::SideEffectAnalyzer An(P);
    // Produce DMOD for every statement, as a compiler would.
    std::size_t Bits = 0;
    for (std::uint32_t I = 0; I != P.numStmts(); ++I)
      Bits += An.dmod(ir::StmtId(I)).count();
    benchmark::DoNotOptimize(Bits);
  }
  State.counters["E"] = static_cast<double>(P.numCallSites());
  State.counters["V"] = static_cast<double>(P.numVars());
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_FullPipeline)->RangeMultiplier(2)->Range(32, 4096)->Complexity();

/// The MOD and USE problems back to back (a client wanting both).
void BM_ModAndUse(benchmark::State &State) {
  ir::Program P = sizedProgram(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    analysis::AnalyzerOptions ModOpts;
    analysis::SideEffectAnalyzer Mod(P, ModOpts);
    analysis::AnalyzerOptions UseOpts;
    UseOpts.Kind = analysis::EffectKind::Use;
    analysis::SideEffectAnalyzer Use(P, UseOpts);
    benchmark::DoNotOptimize(Mod.gmod(P.main()));
    benchmark::DoNotOptimize(Use.gmod(P.main()));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ModAndUse)->RangeMultiplier(4)->Range(32, 2048)->Complexity();

/// §5 step 2: MOD(s) from DMOD(s) under growing ALIAS sets; the sweep
/// variable is alias pairs per procedure.  Expected: linear.
void BM_AliasFactoring(benchmark::State &State) {
  ir::Program P = sizedProgram(512);
  analysis::SideEffectAnalyzer An(P);

  // Artificial alias sets of the requested size (pairs over globals).
  ir::AliasInfo Aliases(P);
  const std::vector<ir::VarId> &Globals = P.proc(P.main()).Locals;
  unsigned PairsPerProc = static_cast<unsigned>(State.range(0));
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    for (unsigned K = 0; K != PairsPerProc; ++K)
      Aliases.addPair(ir::ProcId(I), Globals[K % Globals.size()],
                      Globals[(K + 1) % Globals.size()]);

  for (auto _ : State) {
    std::size_t Bits = 0;
    for (std::uint32_t I = 0; I != P.numStmts(); ++I)
      Bits += An.mod(ir::StmtId(I), Aliases).count();
    benchmark::DoNotOptimize(Bits);
  }
  State.counters["pairs"] = static_cast<double>(Aliases.totalPairs());
}
BENCHMARK(BM_AliasFactoring)->RangeMultiplier(4)->Range(1, 256);

/// The beyond-paper alias estimator (Banning's companion problem): cost
/// of deriving the ALIAS sets themselves.
void BM_AliasEstimator(benchmark::State &State) {
  ir::Program P = sizedProgram(static_cast<unsigned>(State.range(0)));
  std::size_t Pairs = 0;
  for (auto _ : State) {
    ir::AliasInfo AI = analysis::estimateAliases(P);
    Pairs = AI.totalPairs();
    benchmark::DoNotOptimize(AI);
  }
  State.counters["pairs"] = static_cast<double>(Pairs);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_AliasEstimator)->RangeMultiplier(4)->Range(32, 2048)->Complexity();

/// Phase breakdown at a fixed size: how the O(N(E+N)) budget is spent.
void BM_Phase_Graphs(benchmark::State &State) {
  ir::Program P = sizedProgram(1024);
  for (auto _ : State) {
    graph::CallGraph CG(P);
    graph::BindingGraph BG(P);
    benchmark::DoNotOptimize(CG.graph().numEdges());
    benchmark::DoNotOptimize(BG.numEdges());
  }
}
BENCHMARK(BM_Phase_Graphs);

void BM_Phase_LocalAndRMod(benchmark::State &State) {
  ir::Program P = sizedProgram(1024);
  analysis::VarMasks Masks(P);
  graph::BindingGraph BG(P);
  for (auto _ : State) {
    analysis::LocalEffects Local(P, Masks, analysis::EffectKind::Mod);
    analysis::RModResult R = analysis::solveRMod(P, BG, Local);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Phase_LocalAndRMod);

void BM_Phase_GMod(benchmark::State &State) {
  ir::Program P = sizedProgram(1024);
  analysis::VarMasks Masks(P);
  graph::CallGraph CG(P);
  graph::BindingGraph BG(P);
  analysis::LocalEffects Local(P, Masks, analysis::EffectKind::Mod);
  analysis::RModResult R = analysis::solveRMod(P, BG, Local);
  std::vector<EffectSet> Plus = analysis::computeIModPlus(P, Local, R);
  for (auto _ : State) {
    analysis::GModResult G = analysis::solveGMod(P, CG, Masks, Plus);
    benchmark::DoNotOptimize(G);
  }
}
BENCHMARK(BM_Phase_GMod);

void BM_Phase_DModProjection(benchmark::State &State) {
  ir::Program P = sizedProgram(1024);
  analysis::SideEffectAnalyzer An(P);
  for (auto _ : State) {
    std::size_t Bits = 0;
    for (std::uint32_t I = 0; I != P.numCallSites(); ++I)
      Bits += An.dmod(ir::CallSiteId(I)).count();
    benchmark::DoNotOptimize(Bits);
  }
}
BENCHMARK(BM_Phase_DModProjection);

} // namespace
