//===- bench/bench_observe.cpp - Observability overhead (E10) -----------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Measures what observing an analysis costs (E10).  Two row kinds, one
// JSON line each:
//
//  Overhead rows — each rep runs the same engine back to back with no
//  TraceScope installed (spans take the early-out path) and with a
//  CostReport-collecting scope installed (spans record), keeping each
//  cell's minimum over `Reps`:
//
//   {"kind":"overhead","engine":"sequential","shape":"fortran-1000",
//    "procs":1001,"off_ms":0.61,"on_ms":0.62,"overhead_pct":1.2,"reps":25}
//
//  The acceptance gate is overhead_pct < 2 for every engine (spans sit at
//  phase granularity, so the span count per run is a small constant; the
//  only per-word cost is the EffectSet op counter, which is compiled in
//  for both cells here).  Comparing an IPSE_OBSERVE=OFF *build* against ON
//  is a separate two-build experiment; this benchmark measures the
//  scope-installed vs dormant gap inside one ON build, which is the cost a
//  user pays for `--profile`.
//
//  Phase rows — one profiled run per engine, one line per CostReport
//  phase, so the E10 table can show where the wall time and bit-vector
//  word operations actually go:
//
//   {"kind":"phase","engine":"parallel-k2","shape":"fortran-1000",
//    "phase":"gmod","count":1,"wall_ns":180335,"bv_ops":52100}
//
//  Recorder rows — the flight recorder's own cost: the same engine back
//  to back with flight recording disabled and enabled (no TraceScope in
//  either cell, so the ring write is the *only* difference), keeping
//  each cell's minimum:
//
//   {"kind":"recorder","engine":"sequential","shape":"fortran-1000",
//    "procs":1001,"off_ms":0.61,"on_ms":0.62,
//    "recorder_overhead_pct":1.2,"reps":25}
//
//  ipse-bench-diff hard-gates recorder_overhead_pct <= 5 on the
//  sequential/fortran-1000 cell: the recorder ships enabled by default
//  in `serve`, so its overhead is a promise, not a tunable.
//
// Engines: the sequential batch analyzer, the parallel engine at K=2, and
// incremental-session construction (its full-rebuild path) — all driven
// through the ipse::Analyzer facade, like every consumer.
//
// Under IPSE_OBSERVE=OFF the overhead rows still print (both cells then
// time the same dormant code) and the phase rows vanish.
//
//===----------------------------------------------------------------------===//

#include "api/Ipse.h"
#include "observe/FlightRecorder.h"
#include "synth/ProgramGen.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

using namespace ipse;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned Reps = 25;

double timeOnceMs(const std::function<void()> &Fn) {
  Clock::time_point Start = Clock::now();
  Fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

struct EngineCell {
  const char *Name;
  ipse::AnalysisOptions Opts;
};

std::vector<EngineCell> engineCells() {
  std::vector<EngineCell> Cells;
  {
    ipse::AnalysisOptions O;
    O.Backend = ipse::AnalysisOptions::Engine::Sequential;
    Cells.push_back({"sequential", O});
  }
  {
    ipse::AnalysisOptions O;
    O.Backend = ipse::AnalysisOptions::Engine::Parallel;
    O.Threads = 2;
    Cells.push_back({"parallel-k2", O});
  }
  {
    ipse::AnalysisOptions O;
    O.Backend = ipse::AnalysisOptions::Engine::Session;
    Cells.push_back({"session", O});
  }
  return Cells;
}

void runShape(const char *Name, const ir::Program &P) {
  for (const EngineCell &Cell : engineCells()) {
    // The analyze() body is identical in both cells; only the installed
    // scope differs.  MOD only — the overhead ratio is what matters, not
    // the absolute pipeline width.
    ipse::AnalysisOptions Off = Cell.Opts;
    Off.TrackUse = false;
    ipse::AnalysisOptions On = Off;
    On.Profile = true;
    const ipse::Analyzer AnOff(Off), AnOn(On);

    double OffMs = 0, OnMs = 0;
    for (unsigned R = 0; R != Reps; ++R) {
      double Ms = timeOnceMs([&] { (void)AnOff.analyze(P); });
      if (R == 0 || Ms < OffMs)
        OffMs = Ms;
      Ms = timeOnceMs([&] { (void)AnOn.analyze(P); });
      if (R == 0 || Ms < OnMs)
        OnMs = Ms;
    }
    std::printf("{\"kind\":\"overhead\",\"engine\":\"%s\",\"shape\":\"%s\","
                "\"procs\":%u,\"off_ms\":%.3f,\"on_ms\":%.3f,"
                "\"overhead_pct\":%.1f,\"reps\":%u}\n",
                Cell.Name, Name, (unsigned)P.numProcs(), OffMs, OnMs,
                (OnMs - OffMs) / OffMs * 100.0, Reps);

    // Recorder cells: same dormant-scope engine, flight recording off vs
    // on.  Spans sit at phase granularity, so the delta is a handful of
    // ring writes per run.
    double RecOffMs = 0, RecOnMs = 0;
    for (unsigned R = 0; R != Reps; ++R) {
      observe::flight::setEnabled(false);
      double Ms = timeOnceMs([&] { (void)AnOff.analyze(P); });
      if (R == 0 || Ms < RecOffMs)
        RecOffMs = Ms;
      observe::flight::setEnabled(true);
      Ms = timeOnceMs([&] { (void)AnOff.analyze(P); });
      if (R == 0 || Ms < RecOnMs)
        RecOnMs = Ms;
    }
    std::printf("{\"kind\":\"recorder\",\"engine\":\"%s\",\"shape\":\"%s\","
                "\"procs\":%u,\"off_ms\":%.3f,\"on_ms\":%.3f,"
                "\"recorder_overhead_pct\":%.1f,\"reps\":%u}\n",
                Cell.Name, Name, (unsigned)P.numProcs(), RecOffMs, RecOnMs,
                (RecOnMs - RecOffMs) / RecOffMs * 100.0, Reps);

    // One profiled run for the phase breakdown.
    ipse::Analysis A = AnOn.analyze(P);
    for (const observe::PhaseCost &Ph : A.costs().phases())
      std::printf("{\"kind\":\"phase\",\"engine\":\"%s\",\"shape\":\"%s\","
                  "\"phase\":\"%s\",\"count\":%llu,\"wall_ns\":%llu,"
                  "\"bv_ops\":%llu}\n",
                  Cell.Name, Name, Ph.Name.c_str(),
                  (unsigned long long)Ph.Count, (unsigned long long)Ph.WallNs,
                  (unsigned long long)Ph.BitOps);
    std::fflush(stdout);
  }
}

} // namespace

int main() {
  runShape("fortran-1000", synth::makeFortranStyleProgram(1000, 200, 3, 9));
  runShape("nested-6x4", synth::makeNestedProgram(6, 4, 11));
  return 0;
}
