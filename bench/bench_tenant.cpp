//===- bench/bench_tenant.cpp - Multi-tenant service throughput ---------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Measures the sharded multi-tenant registry: how fast tenants open, the
// read-path gap between a resident tenant (inline snapshot pin) and an
// evicted one (queue + fault-in from disk), the fault-in latency itself,
// and the headline capacity figure — a single server holding far more
// open tenants than its resident cap while answering from whichever side
// of the LRU a query lands on.  Like bench_persist, not google-benchmark
// based: one JSON line per shape:
//
//   {"shape":"tenants-1000/cap-64","tenants":1000,"cap":64,"procs":6,
//    "open_ms":2301.2,"opens_per_s":434.5,"edit_us":170.1,
//    "resident_qps":211000.0,"evicted_qps":580.1,"fault_in_ms":1.62}
//
// resident_qps hammers one warm tenant (every query is the lock-free
// inline path).  evicted_qps round-robins the whole population through a
// cap-sized residency window, so nearly every query pays a fault-in plus
// the eviction it forces — the worst case for a cache this shape.
// fault_in_ms isolates one cold query against a long-idle tenant.
//
//===----------------------------------------------------------------------===//

#include "service/ScriptDriver.h"
#include "tenant/TenantService.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

using namespace ipse;

namespace {

using Clock = std::chrono::steady_clock;

struct Shape {
  const char *Name;
  unsigned Tenants;
  std::size_t Cap;
  unsigned Procs;
  unsigned ResidentQueries;
  unsigned ColdQueries;
};

// tenants-1000 is the acceptance shape: 1000 open programs through a
// 64-seat residency window.  tenants-128 keeps a fast row for smoke runs.
const Shape Shapes[] = {
    {"tenants-128/cap-16", 128, 16, 6, 2000, 64},
    {"tenants-1000/cap-64", 1000, 64, 6, 4000, 128},
};

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

void die(const std::string &Err) {
  std::fprintf(stderr, "bench_tenant: %s\n", Err.c_str());
  std::exit(1);
}

service::Response expectOk(service::Response R, const char *What) {
  if (!R.Ok)
    die(std::string(What) + ": " + R.Error);
  return R;
}

void runShape(const Shape &Sh, const std::string &Dir) {
  std::filesystem::remove_all(Dir);

  tenant::TenantOptions Opts;
  Opts.Shards = 4;
  Opts.DataDir = Dir;
  Opts.MaxResident = Sh.Cap;
  tenant::TenantService Svc(Opts);

  auto NameOf = [](unsigned I) { return "t" + std::to_string(I); };
  std::string Spec = " procs=" + std::to_string(Sh.Procs) +
                     " globals=4 seed=";

  // Open rate: session solve + store init + manifest rewrite per tenant,
  // with the LRU evicting all the while.
  Clock::time_point T0 = Clock::now();
  for (unsigned I = 0; I != Sh.Tenants; ++I)
    expectOk(Svc.call("", "open " + NameOf(I) + Spec + std::to_string(I)),
             "open");
  double OpenMs = millisSince(T0);

  // Edit latency on a warm tenant: apply + WAL fsync + snapshot publish.
  std::string Hot = NameOf(Sh.Tenants - 1);
  constexpr unsigned Edits = 32;
  T0 = Clock::now();
  for (unsigned I = 0; I != Edits; ++I)
    expectOk(Svc.call(Hot, "add-global bg" + std::to_string(I)), "edit");
  double EditUs = millisSince(T0) * 1000.0 / Edits;

  // Resident reads: every query pins the published snapshot inline.
  expectOk(Svc.call(Hot, "gmod main"), "warm query");
  T0 = Clock::now();
  for (unsigned I = 0; I != Sh.ResidentQueries; ++I)
    expectOk(Svc.call(Hot, "gmod main"), "resident query");
  double ResidentQps = Sh.ResidentQueries / (millisSince(T0) / 1000.0);

  // Fault-in latency: tenants 0..N-cap-1 have been cold since the open
  // sweep; each first touch restores planes from disk (no re-solve).
  T0 = Clock::now();
  for (unsigned I = 0; I != Sh.ColdQueries; ++I)
    expectOk(Svc.call(NameOf(I), "gmod main"), "cold query");
  double FaultInMs = millisSince(T0) / Sh.ColdQueries;

  // Evicted-side throughput: round-robin the whole population through the
  // cap-sized window — continuous fault-in + forced eviction.
  unsigned Sweep = Sh.Tenants * 2;
  T0 = Clock::now();
  for (unsigned I = 0; I != Sweep; ++I)
    expectOk(Svc.call(NameOf((I * 37) % Sh.Tenants), "gmod main"),
             "sweep query");
  double EvictedQps = Sweep / (millisSince(T0) / 1000.0);

  tenant::TenantCounters C = Svc.counters();
  if (C.Evictions == 0 || C.FaultIns == 0)
    die("shape never exercised the LRU (evictions=" +
        std::to_string(C.Evictions) + ")");

  std::printf(
      "{\"shape\":\"%s\",\"tenants\":%u,\"cap\":%zu,\"procs\":%u,"
      "\"open_ms\":%.1f,\"opens_per_s\":%.1f,\"edit_us\":%.1f,"
      "\"resident_qps\":%.1f,\"evicted_qps\":%.1f,\"fault_in_ms\":%.2f}\n",
      Sh.Name, Sh.Tenants, Sh.Cap, Sh.Procs, OpenMs,
      OpenMs > 0 ? Sh.Tenants / (OpenMs / 1000.0) : 0.0, EditUs, ResidentQps,
      EvictedQps, FaultInMs);
  std::fflush(stdout);

  Svc.stop();
  std::filesystem::remove_all(Dir);
}

} // namespace

int main() {
  std::string Dir =
      std::filesystem::temp_directory_path() / "ipse_bench_tenant";
  for (const Shape &Sh : Shapes)
    runShape(Sh, Dir);
  return 0;
}
