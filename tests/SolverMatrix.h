//===- tests/SolverMatrix.h - Every GMOD engine, enumerable -----*- C++ -*-===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One fixture enumerating every GMOD/GUSE engine in the repository —
/// the three data-flow baselines, the paper's Figure 2 and §4 algorithms,
/// the public SideEffectAnalyzer, the incremental session, and the
/// level-scheduled parallel engine at several thread counts.  Property and
/// edge-case suites iterate this list instead of instantiating solvers ad
/// hoc, so a future engine added here is automatically covered by every
/// differential test.
///
/// Index 0 is the round-robin iterative baseline — the semantic oracle the
/// others are compared against.
///
//===----------------------------------------------------------------------===//

#ifndef IPSE_TESTS_SOLVERMATRIX_H
#define IPSE_TESTS_SOLVERMATRIX_H

#include "analysis/GMod.h"
#include "analysis/IModPlus.h"
#include "analysis/LocalEffects.h"
#include "analysis/MultiLevelGMod.h"
#include "analysis/RMod.h"
#include "analysis/VarMasks.h"
#include "api/Ipse.h"
#include "baselines/IterativeSolver.h"
#include "baselines/SwiftStyleSolver.h"
#include "baselines/WorklistSolver.h"
#include "graph/BindingGraph.h"
#include "graph/CallGraph.h"
#include "ir/Program.h"

#include <functional>
#include <vector>

namespace ipse {
namespace testmatrix {

struct SolverEngine {
  const char *Name;
  /// Figure 2 relies on the two-level filter; skip it when nesting is
  /// deeper (the multi-level engines cover those programs).
  bool TwoLevelOnly = false;
  std::function<analysis::GModResult(const ir::Program &,
                                     analysis::EffectKind)>
      Solve;
};

namespace detail {

/// The shared front half of the paper's pipeline: masks, graphs, local
/// effects, Figure-1 RMOD, and equation-(5) IMOD+.
struct FrontHalf {
  analysis::VarMasks Masks;
  graph::CallGraph CG;
  graph::BindingGraph BG;
  analysis::LocalEffects Local;
  analysis::RModResult RMod;
  std::vector<EffectSet> Plus;

  FrontHalf(const ir::Program &P, analysis::EffectKind Kind)
      : Masks(P), CG(P), BG(P), Local(P, Masks, Kind),
        RMod(analysis::solveRMod(P, BG, Local)),
        Plus(analysis::computeIModPlus(P, Local, RMod)) {}
};

} // namespace detail

/// All engines.  Every entry is self-contained: it builds its own pipeline
/// state, so engines cannot contaminate each other.
inline const std::vector<SolverEngine> &allSolverEngines() {
  static const std::vector<SolverEngine> Engines = [] {
    using analysis::EffectKind;
    using analysis::GModResult;
    using ir::Program;
    std::vector<SolverEngine> E;

    E.push_back({"iterative", false, [](const Program &P, EffectKind K) {
                   detail::FrontHalf F(P, K);
                   return baselines::solveIterative(P, F.CG, F.Masks, F.Local)
                       .GMod;
                 }});
    E.push_back({"worklist", false, [](const Program &P, EffectKind K) {
                   detail::FrontHalf F(P, K);
                   return baselines::solveWorklist(P, F.CG, F.Masks, F.Local)
                       .GMod;
                 }});
    E.push_back({"swift", false, [](const Program &P, EffectKind K) {
                   detail::FrontHalf F(P, K);
                   return baselines::solveSwift(P, F.CG, F.Masks, F.Local)
                       .GMod;
                 }});
    E.push_back({"figure2", /*TwoLevelOnly=*/true,
                 [](const Program &P, EffectKind K) {
                   detail::FrontHalf F(P, K);
                   return analysis::solveGMod(P, F.CG, F.Masks, F.Plus);
                 }});
    E.push_back({"multilevel-repeated", false,
                 [](const Program &P, EffectKind K) {
                   detail::FrontHalf F(P, K);
                   return analysis::solveMultiLevelRepeated(P, F.CG, F.Masks,
                                                            F.Plus);
                 }});
    E.push_back({"multilevel-combined", false,
                 [](const Program &P, EffectKind K) {
                   detail::FrontHalf F(P, K);
                   return analysis::solveMultiLevelCombined(P, F.CG, F.Masks,
                                                            F.Plus);
                 }});
    // The remaining engines answer through the ipse::Analyzer facade —
    // the public path every consumer takes.
    auto viaFacade = [](ipse::AnalysisOptions Opts, const Program &P,
                        EffectKind K) {
      return ipse::Analyzer(Opts).analyze(P).gmodResult(K);
    };
    E.push_back({"analyzer", false, [viaFacade](const Program &P,
                                                EffectKind K) {
                   ipse::AnalysisOptions Opts;
                   Opts.Backend = ipse::AnalysisOptions::Engine::Sequential;
                   return viaFacade(Opts, P, K);
                 }});
    E.push_back({"incremental", false, [viaFacade](const Program &P,
                                                   EffectKind K) {
                   ipse::AnalysisOptions Opts;
                   Opts.Backend = ipse::AnalysisOptions::Engine::Session;
                   return viaFacade(Opts, P, K);
                 }});
    // gmodResult() forces the demand engine to cover the whole program,
    // so this exercises region solving driven to completion.
    E.push_back({"demand", false, [viaFacade](const Program &P,
                                              EffectKind K) {
                   ipse::AnalysisOptions Opts;
                   Opts.Backend = ipse::AnalysisOptions::Engine::Demand;
                   return viaFacade(Opts, P, K);
                 }});
    for (unsigned Threads : {1u, 2u, 4u}) {
      const char *Name = Threads == 1   ? "parallel-k1"
                         : Threads == 2 ? "parallel-k2"
                                        : "parallel-k4";
      E.push_back({Name, false, [viaFacade, Threads](const Program &P,
                                                     EffectKind K) {
                     ipse::AnalysisOptions Opts;
                     Opts.Backend = ipse::AnalysisOptions::Engine::Parallel;
                     Opts.Threads = Threads;
                     return viaFacade(Opts, P, K);
                   }});
    }
    // The representation axis: the same engines with the effect-set
    // storage pinned dense or sparse.  The oracle diff then proves the
    // byte-identity promise of AnalysisOptions::Repr, not just Auto.
    struct ReprEngine {
      const char *Name;
      ipse::AnalysisOptions::Engine Backend;
      unsigned Threads;
      EffectSet::Representation Repr;
    };
    for (ReprEngine RE : std::initializer_list<ReprEngine>{
             {"analyzer-dense", ipse::AnalysisOptions::Engine::Sequential, 1,
              EffectSet::Representation::Dense},
             {"analyzer-sparse", ipse::AnalysisOptions::Engine::Sequential, 1,
              EffectSet::Representation::Sparse},
             {"parallel-k4-sparse", ipse::AnalysisOptions::Engine::Parallel, 4,
              EffectSet::Representation::Sparse}})
      E.push_back({RE.Name, false, [viaFacade, RE](const Program &P,
                                                   EffectKind K) {
                     ipse::AnalysisOptions Opts;
                     Opts.Backend = RE.Backend;
                     Opts.Threads = RE.Threads;
                     Opts.Repr = RE.Repr;
                     analysis::GModResult R = viaFacade(Opts, P, K);
                     // Restore the process default for engines that do
                     // not pass through the facade.
                     EffectSet::setDefaultRepresentation(
                         EffectSet::Representation::Auto);
                     return R;
                   }});
    return E;
  }();
  return Engines;
}

} // namespace testmatrix
} // namespace ipse

#endif // IPSE_TESTS_SOLVERMATRIX_H
