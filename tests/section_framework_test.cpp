//===- tests/section_framework_test.cpp - Generic §6 framework tests ----------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The framework abstraction: the same solver instantiated at Figure 3's
// lattice must behave exactly like solveRsd, and instantiated at the
// bounded-range lattice it must deliver strictly finer answers on
// workloads where distinct constant sections hull instead of widening.
//
//===----------------------------------------------------------------------===//

#include "analysis/SectionDomains.h"
#include "analysis/SectionFramework.h"
#include "graph/BindingGraph.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace ipse;
using namespace ipse::analysis;
using namespace ipse::ir;

namespace {

/// p(x) and q(y) both bind their array into r's formal z via two call
/// sites in r; p writes element 2, q writes element 5.
///
///   r(z):   z := ...            (lrsd differs per lattice below)
///   p(x):   call r(x)
///   q(y):   call r(y)
struct FanWorkload {
  Program P;
  VarId X, Y, Z;
  graph::BindingGraph *BG = nullptr;
  std::unique_ptr<graph::BindingGraph> BGOwner;

  FanWorkload() {
    ProgramBuilder B;
    ProcId Main = B.createMain("m");
    VarId G = B.addGlobal("A");
    ProcId R = B.createProc("r", Main);
    Z = B.addFormal(R, "z");
    StmtId S = B.addStmt(R);
    B.addMod(S, Z);
    ProcId Pp = B.createProc("p", Main);
    X = B.addFormal(Pp, "x");
    B.addCallStmt(Pp, R, {X});
    ProcId Q = B.createProc("q", Main);
    Y = B.addFormal(Q, "y");
    B.addCallStmt(Q, R, {Y});
    B.addCallStmt(Main, Pp, {G});
    B.addCallStmt(Main, Q, {G});
    P = B.finish();
    BGOwner = std::make_unique<graph::BindingGraph>(P);
    BG = BGOwner.get();
  }
};

TEST(SectionFramework, GenericRegularDomainMatchesSolveRsd) {
  FanWorkload W;
  // Classic problem via the RsdProblem front end.
  RsdProblem Classic(W.P, *W.BG);
  Classic.setFormalArray(W.Z, 1);
  Classic.setFormalArray(W.X, 1);
  Classic.setFormalArray(W.Y, 1);
  Classic.setLocalSection(W.Z,
                          RegularSection::section1(Subscript::constant(2)));
  RsdResult ViaWrapper = solveRsd(Classic);

  // The same problem fed to the generic solver directly.
  SectionProblem<RegularSectionDomain> Generic(W.P, *W.BG);
  Generic.setFormalArray(W.Z, 1);
  Generic.setFormalArray(W.X, 1);
  Generic.setFormalArray(W.Y, 1);
  Generic.setLocalSection(W.Z,
                          RegularSection::section1(Subscript::constant(2)));
  SectionSolveResult<RegularSectionDomain> Direct =
      solveSectionProblem(Generic);

  for (VarId F : {W.X, W.Y, W.Z})
    EXPECT_EQ(ViaWrapper.of(F), Direct.of(F));
}

TEST(SectionFramework, BoundedDomainSolvesOnBeta) {
  FanWorkload W;
  SectionProblem<BoundedSectionDomain> Problem(W.P, *W.BG);
  for (VarId F : {W.X, W.Y, W.Z})
    Problem.setFormalArray(F, 1);
  // r touches the block 2:5 of its view.
  Problem.setLocalSection(W.Z,
                          BoundedSection::make1(DimRange::interval(2, 5)));
  SectionSolveResult<BoundedSectionDomain> R = solveSectionProblem(Problem);

  EXPECT_EQ(R.of(W.Z).toString(), "(2:5)");
  // The interval flows through the identity bindings unchanged — frame
  // independent, unlike symbols.
  EXPECT_EQ(R.of(W.X).toString(), "(2:5)");
  EXPECT_EQ(R.of(W.Y).toString(), "(2:5)");
}

TEST(SectionFramework, BoundedIsFinerThanRegularOnConstantFan) {
  // Two distinct constant elements meet at a shared node: Figure 3 widens
  // the dimension to *, the bounded lattice keeps the 2-element hull.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("A");
  ProcId Rp = B.createProc("r", Main);
  VarId Z = B.addFormal(Rp, "z");
  B.addCallStmt(Main, Rp, {G});
  // r fans out: r calls r1 and r2, both bind z onward.
  ProcId R1 = B.createProc("r1", Main);
  VarId Z1 = B.addFormal(R1, "z1");
  StmtId S1 = B.addStmt(R1);
  B.addMod(S1, Z1);
  ProcId R2 = B.createProc("r2", Main);
  VarId Z2 = B.addFormal(R2, "z2");
  StmtId S2 = B.addStmt(R2);
  B.addMod(S2, Z2);
  B.addCallStmt(Rp, R1, {Z});
  B.addCallStmt(Rp, R2, {Z});
  Program P = B.finish();
  graph::BindingGraph BG(P);

  // Figure 3: elements 2 and 5 meet to (*).
  RsdProblem Fig3(P, BG);
  for (VarId F : {Z, Z1, Z2})
    Fig3.setFormalArray(F, 1);
  Fig3.setLocalSection(Z1, RegularSection::section1(Subscript::constant(2)));
  Fig3.setLocalSection(Z2, RegularSection::section1(Subscript::constant(5)));
  RsdResult Coarse = solveRsd(Fig3);
  EXPECT_EQ(Coarse.of(Z).toString(), "(*)");

  // Bounded: the hull 2:5 survives.
  SectionProblem<BoundedSectionDomain> Fine(P, BG);
  for (VarId F : {Z, Z1, Z2})
    Fine.setFormalArray(F, 1);
  Fine.setLocalSection(
      Z1, BoundedSection::make1(DimRange::point(Subscript::constant(2))));
  Fine.setLocalSection(
      Z2, BoundedSection::make1(DimRange::point(Subscript::constant(5))));
  SectionSolveResult<BoundedSectionDomain> R = solveSectionProblem(Fine);
  EXPECT_EQ(R.of(Z).toString(), "(2:5)");

  // The finer answer still proves disjointness from element 7, which the
  // Figure 3 result cannot.
  BoundedSection Elem7 =
      BoundedSection::make1(DimRange::point(Subscript::constant(7)));
  EXPECT_FALSE(R.of(Z).mayIntersect(Elem7));
  EXPECT_TRUE(RegularSection::section1(Subscript::star())
                  .mayIntersect(RegularSection::section1(
                      Subscript::constant(7))));
}

TEST(SectionFramework, BoundedRowBindingComposesWithIntervals) {
  // work(w /*1-d*/) touches w(1:3); rowuser(r, i) binds w = row i of r.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId A = B.addGlobal("A");
  ProcId Work = B.createProc("work", Main);
  VarId Wf = B.addFormal(Work, "w");
  StmtId S = B.addStmt(Work);
  B.addMod(S, Wf);
  ProcId RowUser = B.createProc("rowuser", Main);
  VarId Rf = B.addFormal(RowUser, "r");
  VarId If = B.addFormal(RowUser, "i");
  B.addCallStmt(RowUser, Work, {Rf});
  B.addCallStmt(Main, RowUser, {A, A});
  Program P = B.finish();
  graph::BindingGraph BG(P);

  SectionProblem<BoundedSectionDomain> Problem(P, BG);
  Problem.setFormalArray(Wf, 1);
  Problem.setFormalArray(Rf, 2);
  Problem.setLocalSection(Wf,
                          BoundedSection::make1(DimRange::interval(1, 3)));
  graph::NodeId RNode = BG.nodeOf(Rf);
  ASSERT_NE(RNode, graph::BindingGraph::NoNode);
  for (const graph::Adjacency &Adj : BG.graph().succs(RNode))
    Problem.setEdgeBinding(Adj.Edge,
                           SectionBinding::rowOf(Subscript::symbol(If)));

  SectionSolveResult<BoundedSectionDomain> R = solveSectionProblem(Problem);
  // Row i, columns 1:3 — a strided block neither lattice dimension
  // widened.
  EXPECT_EQ(R.of(Rf).toString(),
            "(v" + std::to_string(If.index()) + ",1:3)");
}

} // namespace
