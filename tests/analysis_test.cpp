//===- tests/analysis_test.cpp - Hand-computed pipeline expectations ----------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasEstimator.h"
#include "analysis/DMod.h"
#include "analysis/GMod.h"
#include "analysis/IModPlus.h"
#include "analysis/LocalEffects.h"
#include "analysis/RMod.h"
#include "analysis/SideEffectAnalyzer.h"
#include "analysis/VarMasks.h"
#include "graph/BindingGraph.h"
#include "graph/Reachability.h"
#include "graph/CallGraph.h"
#include "ir/Printer.h"
#include "ir/ProgramBuilder.h"
#include "synth/ProgramGen.h"

#include <gtest/gtest.h>

using namespace ipse;
using namespace ipse::analysis;
using namespace ipse::ir;

namespace {

/// Set-of-vars matcher helper.
EffectSet makeSet(std::size_t Universe, std::initializer_list<VarId> Vars) {
  EffectSet BV(Universe);
  for (VarId V : Vars)
    BV.set(V.index());
  return BV;
}

/// The running example from the header comment of ir_test.cpp:
///
///   program main; var g, h;
///     proc q(c);       begin c := g; end;
///     proc p(a, b); var x;
///       begin x := a; call q(b); h := 2; end;
///   begin call p(g, h); write g; end.
struct Example {
  Program P;
  ProcId Main, PProc, QProc;
  VarId G, H, A, Bv, X, C;
  StmtId MainCallStmt;
  CallSiteId CallQ, CallP;

  Example() {
    ProgramBuilder B;
    Main = B.createMain("main");
    G = B.addGlobal("g");
    H = B.addGlobal("h");
    QProc = B.createProc("q", Main);
    C = B.addFormal(QProc, "c");
    StmtId QS = B.addStmt(QProc);
    B.addMod(QS, C);
    B.addUse(QS, G);
    PProc = B.createProc("p", Main);
    A = B.addFormal(PProc, "a");
    Bv = B.addFormal(PProc, "b");
    X = B.addLocal(PProc, "x");
    StmtId PS1 = B.addStmt(PProc);
    B.addMod(PS1, X);
    B.addUse(PS1, A);
    CallQ = B.addCallStmt(PProc, QProc, {Bv});
    StmtId PS3 = B.addStmt(PProc);
    B.addMod(PS3, H);
    MainCallStmt = B.addStmt(Main);
    CallP = B.addCall(MainCallStmt, PProc, std::vector<VarId>{G, H});
    StmtId MS = B.addStmt(Main);
    B.addUse(MS, G);
    P = B.finish();
  }
};

TEST(VarMasks, LocalAndGlobalMasks) {
  Example E;
  VarMasks M(E.P);
  EXPECT_TRUE(M.local(E.PProc).test(E.X.index()));
  EXPECT_TRUE(M.local(E.PProc).test(E.A.index()));
  EXPECT_FALSE(M.local(E.PProc).test(E.G.index()));
  EXPECT_TRUE(M.global().test(E.G.index()));
  EXPECT_TRUE(M.global().test(E.H.index()));
  EXPECT_FALSE(M.global().test(E.X.index()));
  // Main's LOCAL is the globals.
  EXPECT_EQ(M.local(E.Main), M.global());
  // Level masks partition the variables.
  EXPECT_EQ(M.level(0), M.global());
  EXPECT_TRUE(M.level(1).test(E.C.index()));
}

TEST(LocalEffects, ModSets) {
  Example E;
  VarMasks M(E.P);
  LocalEffects L(E.P, M, EffectKind::Mod);
  EXPECT_EQ(L.own(E.QProc), makeSet(E.P.numVars(), {E.C}));
  EXPECT_EQ(L.own(E.PProc), makeSet(E.P.numVars(), {E.X, E.H}));
  EXPECT_EQ(L.own(E.Main), makeSet(E.P.numVars(), {}));
  // No nesting here: extended == own.
  EXPECT_EQ(L.extended(E.PProc), L.own(E.PProc));
  EXPECT_TRUE(L.formalBit(E.P, E.C));
  EXPECT_FALSE(L.formalBit(E.P, E.A));
  EXPECT_FALSE(L.formalBit(E.P, E.Bv));
}

TEST(LocalEffects, UseSets) {
  Example E;
  VarMasks M(E.P);
  LocalEffects L(E.P, M, EffectKind::Use);
  EXPECT_EQ(L.own(E.QProc), makeSet(E.P.numVars(), {E.G}));
  EXPECT_EQ(L.own(E.PProc), makeSet(E.P.numVars(), {E.A}));
  EXPECT_EQ(L.own(E.Main), makeSet(E.P.numVars(), {E.G}));
}

TEST(LocalEffects, NestingExtension) {
  // main { outer(ov) { inner { mod ov; mod g; mod il } } }
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId Outer = B.createProc("outer", Main);
  VarId OV = B.addLocal(Outer, "ov");
  ProcId Inner = B.createProc("inner", Outer);
  VarId IL = B.addLocal(Inner, "il");
  StmtId S = B.addStmt(Inner);
  B.addMod(S, OV);
  B.addMod(S, G);
  B.addMod(S, IL);
  B.addCallStmt(Outer, Inner, {});
  B.addCallStmt(Main, Outer, {});
  Program P = B.finish();

  VarMasks M(P);
  LocalEffects L(P, M, EffectKind::Mod);
  // Own sets: only inner modifies anything directly.
  EXPECT_EQ(L.own(Outer), makeSet(P.numVars(), {}));
  // Extended: inner's effects minus inner's locals fold into outer...
  EXPECT_EQ(L.extended(Inner), makeSet(P.numVars(), {OV, G, IL}));
  EXPECT_EQ(L.extended(Outer), makeSet(P.numVars(), {OV, G}));
  // ...and outer's (minus outer's locals) into main.
  EXPECT_EQ(L.extended(Main), makeSet(P.numVars(), {G}));
}

TEST(RMod, RunningExample) {
  Example E;
  VarMasks M(E.P);
  LocalEffects L(E.P, M, EffectKind::Mod);
  graph::BindingGraph BG(E.P);
  RModResult R = solveRMod(E.P, BG, L);
  EXPECT_TRUE(R.contains(E.C));  // q modifies c directly.
  EXPECT_TRUE(R.contains(E.Bv)); // b is bound to c at the call in p.
  EXPECT_FALSE(R.contains(E.A)); // a is only read.
}

TEST(RMod, ChainPropagatesToTheTop) {
  Program P = synth::makeChainProgram(20, 3);
  VarMasks M(P);
  LocalEffects L(P, M, EffectKind::Mod);
  graph::BindingGraph BG(P);
  RModResult R = solveRMod(P, BG, L);
  // Formal 0 of every chain procedure is eventually modified; formal 1
  // never is.
  for (std::uint32_t I = 1; I != P.numProcs(); ++I) {
    const Procedure &Pr = P.proc(ProcId(I));
    EXPECT_TRUE(R.contains(Pr.Formals[0])) << P.name(ProcId(I));
    EXPECT_FALSE(R.contains(Pr.Formals[1])) << P.name(ProcId(I));
  }
}

TEST(RMod, CycleGivesWholeComponentTheSameValue) {
  Program P = synth::makeCycleProgram(10, 2);
  VarMasks M(P);
  LocalEffects L(P, M, EffectKind::Mod);
  graph::BindingGraph BG(P);
  RModResult R = solveRMod(P, BG, L);
  for (std::uint32_t I = 1; I != P.numProcs(); ++I)
    EXPECT_TRUE(R.contains(P.proc(ProcId(I)).Formals[0]));
}

TEST(RMod, FormalWithoutBindingEventsUsesOwnBit) {
  // p(a): a := 1.  No call passes a anywhere: no β node, RMOD from IMOD.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId PProc = B.createProc("p", Main);
  VarId A = B.addFormal(PProc, "a");
  VarId A2 = B.addFormal(PProc, "a2");
  StmtId S = B.addStmt(PProc);
  B.addMod(S, A);
  B.addCallStmt(Main, PProc, {G, G});
  Program P = B.finish();

  graph::BindingGraph BG(P);
  EXPECT_EQ(BG.numNodes(), 0u);
  VarMasks M(P);
  LocalEffects L(P, M, EffectKind::Mod);
  RModResult R = solveRMod(P, BG, L);
  EXPECT_TRUE(R.contains(A));
  EXPECT_FALSE(R.contains(A2));
}

TEST(IModPlus, ProjectsRModThroughActuals) {
  Example E;
  VarMasks M(E.P);
  LocalEffects L(E.P, M, EffectKind::Mod);
  graph::BindingGraph BG(E.P);
  RModResult R = solveRMod(E.P, BG, L);
  std::vector<EffectSet> Plus = computeIModPlus(E.P, L, R);

  // IMOD+(p) = IMOD(p) ∪ {b}  (b passed to q's modified formal c).
  EXPECT_EQ(Plus[E.PProc.index()],
            makeSet(E.P.numVars(), {E.X, E.H, E.Bv}));
  // IMOD+(main) = {} ∪ {h}  (h bound to b ∈ RMOD(p); g bound to a ∉ RMOD).
  EXPECT_EQ(Plus[E.Main.index()], makeSet(E.P.numVars(), {E.H}));
  // q makes no calls.
  EXPECT_EQ(Plus[E.QProc.index()], makeSet(E.P.numVars(), {E.C}));
}

TEST(GMod, RunningExample) {
  Example E;
  VarMasks M(E.P);
  LocalEffects L(E.P, M, EffectKind::Mod);
  graph::BindingGraph BG(E.P);
  graph::CallGraph CG(E.P);
  RModResult R = solveRMod(E.P, BG, L);
  std::vector<EffectSet> Plus = computeIModPlus(E.P, L, R);
  GModResult GM = solveGMod(E.P, CG, M, Plus);

  EXPECT_EQ(GM.of(E.QProc), makeSet(E.P.numVars(), {E.C}));
  EXPECT_EQ(GM.of(E.PProc), makeSet(E.P.numVars(), {E.X, E.H, E.Bv}));
  EXPECT_EQ(GM.of(E.Main), makeSet(E.P.numVars(), {E.H}));
}

TEST(GMod, GlobalsFlowUpThroughCallChains) {
  // main -> a -> b -> c; only c modifies global g.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId A = B.createProc("a", Main);
  ProcId Bp = B.createProc("b", Main);
  ProcId Cp = B.createProc("c", Main);
  VarId BLocal = B.addLocal(Bp, "bl");
  StmtId SB = B.addStmt(Bp);
  B.addMod(SB, BLocal);
  StmtId SC = B.addStmt(Cp);
  B.addMod(SC, G);
  B.addCallStmt(Main, A, {});
  B.addCallStmt(A, Bp, {});
  B.addCallStmt(Bp, Cp, {});
  Program P = B.finish();

  SideEffectAnalyzer An(P);
  EXPECT_TRUE(An.gmod(Main).test(G.index()));
  EXPECT_TRUE(An.gmod(A).test(G.index()));
  EXPECT_TRUE(An.gmod(Bp).test(G.index()));
  // b's local is filtered before reaching a.
  EXPECT_TRUE(An.gmod(Bp).test(BLocal.index()));
  EXPECT_FALSE(An.gmod(A).test(BLocal.index()));
}

TEST(GMod, RecursiveCycleSharesGlobals) {
  // mutual recursion: a <-> b; a mods g1, b mods g2.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G1 = B.addGlobal("g1");
  VarId G2 = B.addGlobal("g2");
  ProcId A = B.createProc("a", Main);
  ProcId Bp = B.createProc("b", Main);
  StmtId SA = B.addStmt(A);
  B.addMod(SA, G1);
  StmtId SB = B.addStmt(Bp);
  B.addMod(SB, G2);
  B.addCallStmt(A, Bp, {});
  B.addCallStmt(Bp, A, {});
  B.addCallStmt(Main, A, {});
  Program P = B.finish();

  SideEffectAnalyzer An(P);
  for (ProcId Proc : {A, Bp}) {
    EXPECT_TRUE(An.gmod(Proc).test(G1.index()));
    EXPECT_TRUE(An.gmod(Proc).test(G2.index()));
  }
  EXPECT_TRUE(An.gmod(Main).test(G1.index()));
  EXPECT_TRUE(An.gmod(Main).test(G2.index()));
}

TEST(GMod, UnreachableNestedProcFoldsIntoParent) {
  // §3.3 treats nested bodies as extensions of the parent's body, which is
  // exact only when every procedure is reachable — the paper prescribes
  // unreachable-procedure elimination as a preprocessing step.  Without
  // it, the unreachable nested procedure's effects conservatively fold
  // into the (lexical) parent's IMOD.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId Dead = B.createProc("dead", Main);
  StmtId S = B.addStmt(Dead);
  B.addMod(S, G);
  B.addStmt(Main);
  Program P = B.finish();

  SideEffectAnalyzer An(P);
  EXPECT_TRUE(An.gmod(Dead).test(G.index()));
  EXPECT_TRUE(An.gmod(Main).test(G.index())); // Folded per §3.3.

  // After the paper's prescribed preprocessing the imprecision is gone.
  Program Clean = graph::eliminateUnreachable(P);
  SideEffectAnalyzer CleanAn(Clean);
  EXPECT_FALSE(CleanAn.gmod(Clean.main()).any());
}

TEST(DMod, ProjectionAtCallSite) {
  Example E;
  SideEffectAnalyzer An(E.P);
  // DMOD of "call p(g,h)": be(GMOD(p)) = {h} ∪ {h←b} = {h}.
  EffectSet D = An.dmod(E.CallP);
  EXPECT_EQ(D, makeSet(E.P.numVars(), {E.H}));
  // DMOD of the call statement equals it (no LMOD there).
  EXPECT_EQ(An.dmod(E.MainCallStmt), D);
  // DMOD of "call q(b)" inside p: c ∈ GMOD(q) maps to b.
  EXPECT_EQ(An.dmod(E.CallQ), makeSet(E.P.numVars(), {E.Bv}));
}

TEST(DMod, ExpressionActualsBindNothing) {
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  (void)G;
  ProcId Q = B.createProc("q", Main);
  VarId F = B.addFormal(Q, "f");
  StmtId S = B.addStmt(Q);
  B.addMod(S, F);
  StmtId Call = B.addStmt(Main);
  B.addCall(Call, Q, std::vector<Actual>{Actual::expression()});
  Program P = B.finish();

  SideEffectAnalyzer An(P);
  EXPECT_TRUE(An.dmod(Call).none()); // f maps to no storage.
}

TEST(Mod, AliasFactoring) {
  Example E;
  SideEffectAnalyzer An(E.P);
  AliasInfo Aliases(E.P);
  // Suppose g and h may be aliased on entry to main (artificial).
  Aliases.addPair(E.Main, E.G, E.H);
  EffectSet Mod = An.mod(E.MainCallStmt, Aliases);
  // DMOD = {h}; the alias pair pulls in g.
  EXPECT_EQ(Mod, makeSet(E.P.numVars(), {E.G, E.H}));
}

TEST(Mod, OneApplicationOnly) {
  // Pairs <a,b> and <b,c>: DMOD={a} must produce {a,b}, not {a,b,c}.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId A = B.addGlobal("a");
  VarId Bv = B.addGlobal("b");
  VarId C = B.addGlobal("c");
  StmtId S = B.addStmt(Main);
  B.addMod(S, A);
  Program P = B.finish();

  SideEffectAnalyzer An(P);
  AliasInfo Aliases(P);
  Aliases.addPair(P.main(), A, Bv);
  Aliases.addPair(P.main(), Bv, C);
  EffectSet Mod = An.mod(S, Aliases);
  EXPECT_TRUE(Mod.test(A.index()));
  EXPECT_TRUE(Mod.test(Bv.index()));
  EXPECT_FALSE(Mod.test(C.index()));
}

TEST(Use, FullPipelineOnUseKind) {
  Example E;
  AnalyzerOptions Opts;
  Opts.Kind = EffectKind::Use;
  SideEffectAnalyzer An(E.P, Opts);
  // GUSE(q) = {g};  GUSE(p) = {a, g};  GUSE(main) = {g, g←a} = {g}.
  EXPECT_EQ(An.gmod(E.QProc), makeSet(E.P.numVars(), {E.G}));
  EXPECT_EQ(An.gmod(E.PProc), makeSet(E.P.numVars(), {E.A, E.G}));
  EXPECT_EQ(An.gmod(E.Main), makeSet(E.P.numVars(), {E.G}));
  // RUSE: a is used, b and c are not.
  EXPECT_TRUE(An.rmodContains(E.A));
  EXPECT_FALSE(An.rmodContains(E.Bv));
  EXPECT_FALSE(An.rmodContains(E.C));
}

TEST(Analyzer, RModEqualsGModRestrictedToFormals) {
  Example E;
  SideEffectAnalyzer An(E.P);
  for (std::uint32_t I = 0; I != E.P.numProcs(); ++I)
    for (VarId F : E.P.proc(ProcId(I)).Formals)
      EXPECT_EQ(An.rmodContains(F), An.gmod(ProcId(I)).test(F.index()))
          << qualifiedName(E.P, F);
}

TEST(Analyzer, SetToString) {
  Example E;
  SideEffectAnalyzer An(E.P);
  EXPECT_EQ(An.setToString(An.gmod(E.PProc)), "h, p.b, p.x");
  EffectSet Empty(E.P.numVars());
  EXPECT_EQ(An.setToString(Empty), "");
}

TEST(AliasEstimator, SameVarTwiceIntroducesFormalPair) {
  // call p(g, g) must alias p's two formals.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId PProc = B.createProc("p", Main);
  VarId A = B.addFormal(PProc, "a");
  VarId Bv = B.addFormal(PProc, "b");
  B.addCallStmt(Main, PProc, {G, G});
  Program P = B.finish();

  AliasInfo AI = estimateAliases(P);
  ASSERT_GE(AI.pairs(PProc).size(), 2u); // <a,b> plus <a,g>, <b,g>.
  bool FoundAB = false;
  for (const auto &[X, Y] : AI.pairs(PProc))
    FoundAB |= (X == A && Y == Bv) || (X == Bv && Y == A);
  EXPECT_TRUE(FoundAB);
}

TEST(AliasEstimator, GlobalPassedToFormal) {
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId PProc = B.createProc("p", Main);
  VarId A = B.addFormal(PProc, "a");
  B.addCallStmt(Main, PProc, {G});
  Program P = B.finish();

  AliasInfo AI = estimateAliases(P);
  ASSERT_EQ(AI.pairs(PProc).size(), 1u);
  EXPECT_EQ(AI.pairs(PProc)[0].first, G < A ? G : A);
}

TEST(AliasEstimator, PairsPropagateDownCallChains) {
  // main: call p(g);  p(a): call q(a);  q(f): ...
  // <a,g> in p maps to <f,g> in q.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId QProc = B.createProc("q", Main);
  VarId F = B.addFormal(QProc, "f");
  ProcId PProc = B.createProc("p", Main);
  VarId A = B.addFormal(PProc, "a");
  (void)A;
  B.addCallStmt(PProc, QProc, {A});
  B.addCallStmt(Main, PProc, {G});
  Program P = B.finish();

  AliasInfo AI = estimateAliases(P);
  bool FoundFG = false;
  for (const auto &[X, Y] : AI.pairs(QProc))
    FoundFG |= (X == G && Y == F) || (X == F && Y == G);
  EXPECT_TRUE(FoundFG);
}

} // namespace
