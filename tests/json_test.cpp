//===- tests/json_test.cpp - Minimal-JSON edge cases --------------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The support-layer JSON kit underpins the service wire protocol, the
// Chrome-trace validator, and the persistence manifest — three consumers
// with different failure costs, so the edge cases get their own suite:
// validateJsonDocument's strictness (NaN/Infinity, deep nesting, broken
// escapes, trailing garbage), parseJsonObject's typed accessors, and the
// escape round trip through JsonWriter.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>

using namespace ipse;

namespace {

//===----------------------------------------------------------------------===//
// validateJsonDocument.
//===----------------------------------------------------------------------===//

bool valid(const std::string &Doc) {
  std::string Err;
  return validateJsonDocument(Doc, Err);
}

std::string errorOf(const std::string &Doc) {
  std::string Err;
  EXPECT_FALSE(validateJsonDocument(Doc, Err)) << Doc;
  return Err;
}

TEST(JsonValidate, AcceptsEveryValueType) {
  EXPECT_TRUE(valid("{}"));
  EXPECT_TRUE(valid("[]"));
  EXPECT_TRUE(valid("\"string\""));
  EXPECT_TRUE(valid("42"));
  EXPECT_TRUE(valid("-0.5e+10"));
  EXPECT_TRUE(valid("true"));
  EXPECT_TRUE(valid("false"));
  EXPECT_TRUE(valid("null"));
  EXPECT_TRUE(valid("  {\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}  "));
}

TEST(JsonValidate, RejectsNaNAndInfinity) {
  // JSON has no NaN/Infinity literals; a histogram or timing exporter
  // that leaks one must be caught by the validator, not by a consumer.
  EXPECT_FALSE(valid("NaN"));
  EXPECT_FALSE(valid("nan"));
  EXPECT_FALSE(valid("Infinity"));
  EXPECT_FALSE(valid("-Infinity"));
  EXPECT_FALSE(valid("{\"v\":NaN}"));
  EXPECT_FALSE(valid("{\"v\":Infinity}"));
  EXPECT_FALSE(valid("[1e309,NaN]")); // 1e309 overflows but is valid JSON...
  EXPECT_TRUE(valid("[1e309]"));      // ...the NaN is what kills it.
}

TEST(JsonValidate, RejectsMalformedNumbers) {
  EXPECT_FALSE(valid("-"));
  EXPECT_FALSE(valid("1."));
  EXPECT_FALSE(valid("1.e5"));
  EXPECT_FALSE(valid(".5"));
  EXPECT_FALSE(valid("1e"));
  EXPECT_FALSE(valid("1e+"));
  EXPECT_TRUE(valid("1.5e-3"));
  EXPECT_TRUE(valid("-0"));
}

TEST(JsonValidate, DeepNestingIsBounded) {
  // 128 levels pass; beyond that the validator refuses instead of
  // recursing toward a stack overflow on hostile input.
  auto nested = [](int Depth) {
    std::string S;
    for (int I = 0; I != Depth; ++I)
      S += '[';
    S += '1';
    for (int I = 0; I != Depth; ++I)
      S += ']';
    return S;
  };
  EXPECT_TRUE(valid(nested(100)));
  EXPECT_FALSE(valid(nested(200)));
  EXPECT_EQ(errorOf(nested(200)), "nesting too deep");
  // Mixed object/array nesting hits the same bound.
  std::string Obj;
  for (int I = 0; I != 200; ++I)
    Obj += "{\"k\":";
  Obj += "1";
  for (int I = 0; I != 200; ++I)
    Obj += '}';
  EXPECT_EQ(errorOf(Obj), "nesting too deep");
}

TEST(JsonValidate, RejectsBrokenEscapes) {
  EXPECT_FALSE(valid("\"\\x41\""));      // Unknown escape letter.
  EXPECT_FALSE(valid("\"\\u12\""));      // Truncated \u.
  EXPECT_FALSE(valid("\"\\u12zq\""));    // Non-hex digits.
  EXPECT_FALSE(valid("\"\\uD800\""));    // Lone surrogate.
  EXPECT_FALSE(valid("\"\\uDFFF\""));    // Lone surrogate (high end).
  EXPECT_FALSE(valid("\"dangling\\"));   // Escape at end of input.
  EXPECT_FALSE(valid("\"unterminated")); // No closing quote.
  EXPECT_TRUE(valid("\"\\u0041\\n\\t\\\\\\\"\\/\""));
  EXPECT_TRUE(valid("\"\\u00e9\\u4e2d\"")); // BMP code points are fine.
}

TEST(JsonValidate, RejectsTrailingGarbage) {
  EXPECT_EQ(errorOf("{} extra"), "trailing garbage after document");
  EXPECT_EQ(errorOf("1 2"), "trailing garbage after document");
  EXPECT_EQ(errorOf("{}{}"), "trailing garbage after document");
  EXPECT_TRUE(valid("{}   \n\t "));
}

TEST(JsonValidate, RejectsStructuralBreakage) {
  EXPECT_FALSE(valid(""));
  EXPECT_FALSE(valid("{"));
  EXPECT_FALSE(valid("{\"a\":}"));
  EXPECT_FALSE(valid("{\"a\" 1}"));
  EXPECT_FALSE(valid("{a:1}"));
  EXPECT_FALSE(valid("[1,]") || valid("[,1]"));
  EXPECT_FALSE(valid("truthy"));
}

//===----------------------------------------------------------------------===//
// parseJsonObject and the typed accessors.
//===----------------------------------------------------------------------===//

TEST(JsonObjectParse, TypedAccessorsKeepLexicalClass) {
  std::string Err;
  std::optional<JsonObject> O = parseJsonObject(
      "{\"s\":\"text\",\"n\":42,\"neg\":-7,\"d\":2.5,\"b\":true,"
      "\"nested\":{\"x\":[1,2]}}",
      Err);
  ASSERT_TRUE(O) << Err;
  EXPECT_EQ(O->getString("s"), "text");
  EXPECT_EQ(O->getUInt("n"), 42u);
  EXPECT_EQ(O->getUInt("neg"), std::nullopt); // Negative: not a uint.
  EXPECT_EQ(O->getDouble("d"), 2.5);
  EXPECT_EQ(O->getBool("b"), true);
  // Cross-type reads miss instead of coercing.
  EXPECT_EQ(O->getString("n"), std::nullopt);
  EXPECT_EQ(O->getUInt("s"), std::nullopt);
  EXPECT_EQ(O->getBool("n"), std::nullopt);
  // Nested values survive as raw lexemes, re-parseable on demand.
  std::optional<std::string> Raw = O->getRaw("nested");
  ASSERT_TRUE(Raw);
  std::optional<JsonObject> Inner = parseJsonObject(*Raw, Err);
  ASSERT_TRUE(Inner) << Err;
  EXPECT_TRUE(Inner->has("x"));
  // Absent keys.
  EXPECT_FALSE(O->has("missing"));
  EXPECT_EQ(O->getString("missing"), std::nullopt);
}

TEST(JsonObjectParse, UnescapesStringValues) {
  std::string Err;
  std::optional<JsonObject> O = parseJsonObject(
      "{\"v\":\"a\\n\\t\\\"b\\\\c\\u0041\"}", Err);
  ASSERT_TRUE(O) << Err;
  EXPECT_EQ(O->getString("v"), "a\n\t\"b\\cA");
}

TEST(JsonObjectParse, RejectsMalformedObjects) {
  std::string Err;
  EXPECT_FALSE(parseJsonObject("", Err));
  EXPECT_FALSE(parseJsonObject("[1]", Err));
  EXPECT_FALSE(parseJsonObject("{\"k\":\"\\uDEAD\"}", Err));
  EXPECT_FALSE(parseJsonObject("{\"k\":tru}", Err));
  EXPECT_FALSE(parseJsonObject("{\"k\":1", Err));
}

//===----------------------------------------------------------------------===//
// JsonWriter and the escape round trip.
//===----------------------------------------------------------------------===//

TEST(JsonWriter, EscapedOutputParsesBackVerbatim) {
  std::string Nasty = "quote\" slash\\ nl\n tab\t cr\r ctrl\x01 end";
  JsonWriter W;
  W.field("s", Nasty);
  W.field("n", std::uint64_t(7));
  W.field("b", false);
  W.fieldRaw("raw", "[1,2]");
  std::string Doc = W.finish();

  std::string Err;
  ASSERT_TRUE(validateJsonDocument(Doc, Err)) << Err << "\n" << Doc;
  std::optional<JsonObject> O = parseJsonObject(Doc, Err);
  ASSERT_TRUE(O) << Err;
  EXPECT_EQ(O->getString("s"), Nasty);
  EXPECT_EQ(O->getUInt("n"), 7u);
  EXPECT_EQ(O->getBool("b"), false);
  EXPECT_EQ(O->getRaw("raw"), "[1,2]");
}

} // namespace
