//===- tests/graph_test.cpp - Digraph, Tarjan, call/binding graphs ------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include "graph/BindingGraph.h"
#include "graph/CallGraph.h"
#include "graph/Digraph.h"
#include "graph/Dot.h"
#include "graph/Reachability.h"
#include "graph/Tarjan.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace ipse;
using namespace ipse::graph;
using namespace ipse::ir;

namespace {

TEST(Digraph, EmptyGraph) {
  Digraph G(3);
  G.finalize();
  EXPECT_EQ(G.numNodes(), 3u);
  EXPECT_EQ(G.numEdges(), 0u);
  EXPECT_TRUE(G.succs(0).empty());
}

TEST(Digraph, AdjacencyAndEdgeIds) {
  Digraph G(4);
  EdgeId E0 = G.addEdge(0, 1);
  EdgeId E1 = G.addEdge(0, 2);
  EdgeId E2 = G.addEdge(2, 3);
  EdgeId E3 = G.addEdge(0, 1); // Parallel edge.
  G.finalize();

  EXPECT_EQ(G.numEdges(), 4u);
  EXPECT_EQ(G.succs(0).size(), 3u);
  EXPECT_EQ(G.succs(2).size(), 1u);
  EXPECT_TRUE(G.succs(3).empty());
  EXPECT_EQ(G.edgeSource(E2), 2u);
  EXPECT_EQ(G.edgeTarget(E2), 3u);

  std::multiset<NodeId> Targets;
  for (const Adjacency &A : G.succs(0))
    Targets.insert(A.Dst);
  EXPECT_EQ(Targets.count(1), 2u);
  EXPECT_EQ(Targets.count(2), 1u);
  (void)E0;
  (void)E1;
  (void)E3;
}

TEST(Digraph, SelfLoop) {
  Digraph G(2);
  G.addEdge(1, 1);
  G.finalize();
  ASSERT_EQ(G.succs(1).size(), 1u);
  EXPECT_EQ(G.succs(1)[0].Dst, 1u);
}

TEST(Digraph, Reversed) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.finalize();
  Digraph R = G.reversed();
  ASSERT_EQ(R.succs(2).size(), 1u);
  EXPECT_EQ(R.succs(2)[0].Dst, 1u);
  // Edge ids preserved under reversal.
  EXPECT_EQ(R.succs(2)[0].Edge, 1u);
  EXPECT_TRUE(R.succs(0).empty());
}

TEST(Tarjan, ChainIsAllSingletons) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.finalize();
  SccDecomposition S = computeSccs(G);
  EXPECT_EQ(S.numSccs(), 4u);
  // Reverse topological: the sink closes first.
  EXPECT_LT(S.SccOf[3], S.SccOf[2]);
  EXPECT_LT(S.SccOf[2], S.SccOf[1]);
  EXPECT_LT(S.SccOf[1], S.SccOf[0]);
}

TEST(Tarjan, SingleCycle) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  G.finalize();
  SccDecomposition S = computeSccs(G);
  EXPECT_EQ(S.numSccs(), 1u);
  EXPECT_EQ(S.Members[0].size(), 3u);
}

TEST(Tarjan, TwoComponentsAndBridge) {
  // {0,1} -> {2,3}, plus an isolated node 4.
  Digraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 0);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 2);
  G.finalize();
  SccDecomposition S = computeSccs(G);
  EXPECT_EQ(S.numSccs(), 3u);
  EXPECT_EQ(S.SccOf[0], S.SccOf[1]);
  EXPECT_EQ(S.SccOf[2], S.SccOf[3]);
  EXPECT_NE(S.SccOf[0], S.SccOf[2]);
  // Edge from {0,1} to {2,3}: the target component closes first.
  EXPECT_LT(S.SccOf[2], S.SccOf[0]);
}

TEST(Tarjan, SelfLoopIsItsOwnScc) {
  Digraph G(2);
  G.addEdge(0, 0);
  G.finalize();
  SccDecomposition S = computeSccs(G);
  EXPECT_EQ(S.numSccs(), 2u);
}

TEST(Tarjan, ReverseTopologicalIdsOnRandomDag) {
  // Layered DAG: every edge must point to a smaller SCC id.
  Digraph G(12);
  for (NodeId I = 0; I != 8; ++I)
    G.addEdge(I, I + 4 > 11 ? 11 : I + 4);
  G.addEdge(0, 11);
  G.finalize();
  SccDecomposition S = computeSccs(G);
  for (EdgeId E = 0; E != G.numEdges(); ++E) {
    if (S.SccOf[G.edgeSource(E)] != S.SccOf[G.edgeTarget(E)]) {
      EXPECT_LT(S.SccOf[G.edgeTarget(E)], S.SccOf[G.edgeSource(E)]);
    }
  }
}

TEST(Tarjan, DeepChainNoStackOverflow) {
  constexpr NodeId N = 200000;
  Digraph G(N);
  for (NodeId I = 0; I + 1 != N; ++I)
    G.addEdge(I, I + 1);
  G.finalize();
  SccDecomposition S = computeSccs(G);
  EXPECT_EQ(S.numSccs(), N);
}

TEST(Tarjan, Condensation) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 0);
  G.addEdge(1, 2);
  G.addEdge(1, 2); // Parallel cross edge survives as a multi-edge.
  G.addEdge(2, 3);
  G.finalize();
  SccDecomposition S = computeSccs(G);
  Digraph C = buildCondensation(G, S);
  EXPECT_EQ(C.numNodes(), 3u);
  EXPECT_EQ(C.numEdges(), 3u); // Two parallel + one, intra-scc edges gone.
}

/// program main; var g; proc q(c); begin c := 1; end;
/// proc p(a,b); begin call q(a); call q(g); end;
/// begin call p(g,g); end.
struct BindingExample {
  Program P;
  ProcId Main, PProc, QProc;
  VarId G, A, Bv, C;

  BindingExample() {
    ProgramBuilder B;
    Main = B.createMain("main");
    G = B.addGlobal("g");
    QProc = B.createProc("q", Main);
    C = B.addFormal(QProc, "c");
    StmtId QS = B.addStmt(QProc);
    B.addMod(QS, C);
    PProc = B.createProc("p", Main);
    A = B.addFormal(PProc, "a");
    Bv = B.addFormal(PProc, "b");
    B.addCallStmt(PProc, QProc, {A});
    B.addCallStmt(PProc, QProc, {G}); // Global actual: no β edge.
    B.addCallStmt(Main, PProc, {G, G});
    P = B.finish();
  }
};

TEST(CallGraph, EdgesMatchCallSites) {
  BindingExample E;
  CallGraph CG(E.P);
  EXPECT_EQ(CG.graph().numNodes(), 3u);
  EXPECT_EQ(CG.graph().numEdges(), 3u);
  // Edge ids coincide with call-site ids.
  for (EdgeId Eid = 0; Eid != CG.graph().numEdges(); ++Eid) {
    const CallSite &Site = E.P.callSite(CG.callSite(Eid));
    EXPECT_EQ(Site.Caller.index(), CG.graph().edgeSource(Eid));
    EXPECT_EQ(Site.Callee.index(), CG.graph().edgeTarget(Eid));
  }
}

TEST(BindingGraph, OnlyFormalActualsMakeEdges) {
  BindingExample E;
  BindingGraph BG(E.P);
  // Exactly one binding event: a -> c.  Nodes: a and c only.
  EXPECT_EQ(BG.numEdges(), 1u);
  EXPECT_EQ(BG.numNodes(), 2u);
  EXPECT_NE(BG.nodeOf(E.A), BindingGraph::NoNode);
  EXPECT_NE(BG.nodeOf(E.C), BindingGraph::NoNode);
  EXPECT_EQ(BG.nodeOf(E.Bv), BindingGraph::NoNode); // b never passed.

  NodeId From = BG.graph().edgeSource(0);
  NodeId To = BG.graph().edgeTarget(0);
  EXPECT_EQ(BG.formal(From), E.A);
  EXPECT_EQ(BG.formal(To), E.C);
  EXPECT_EQ(BG.origin(0).ArgPos, 0u);
}

TEST(BindingGraph, NodeCountBound) {
  BindingExample E;
  BindingGraph BG(E.P);
  // The paper's bound: every node is an edge endpoint, so Nβ <= 2 Eβ.
  EXPECT_LE(BG.numNodes(), 2 * BG.numEdges());
}

TEST(BindingGraph, AncestorFormalAtNestedCallSite) {
  // §3.3 problem 2: a formal of p passed at a call site inside q, q
  // nested in p, must produce an edge from p's formal.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  ProcId PProc = B.createProc("p", Main);
  VarId A = B.addFormal(PProc, "a");
  ProcId QProc = B.createProc("q", PProc);
  ProcId RProc = B.createProc("r", Main);
  VarId F = B.addFormal(RProc, "f");
  StmtId RS = B.addStmt(RProc);
  B.addMod(RS, F);
  B.addCallStmt(QProc, RProc, {A}); // Inside q, passing p's formal.
  B.addCallStmt(PProc, QProc, {});
  VarId G = B.addGlobal("g");
  B.addCallStmt(Main, PProc, {G});
  Program P = B.finish();

  BindingGraph BG(P);
  ASSERT_NE(BG.nodeOf(A), BindingGraph::NoNode);
  ASSERT_NE(BG.nodeOf(F), BindingGraph::NoNode);
  bool FoundEdge = false;
  for (const Adjacency &Adj : BG.graph().succs(BG.nodeOf(A)))
    FoundEdge |= BG.formal(Adj.Dst) == F;
  EXPECT_TRUE(FoundEdge);
}

TEST(Reachability, FindsReachableSet) {
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  ProcId A = B.createProc("a", Main);
  ProcId Bp = B.createProc("b", Main);
  ProcId Dead = B.createProc("dead", Main);
  ProcId DeadChild = B.createProc("deadchild", Dead);
  B.addCallStmt(Main, A, {});
  B.addCallStmt(A, Bp, {});
  B.addCallStmt(Dead, DeadChild, {});
  Program P = B.finish();

  BitVector R = reachableProcs(P);
  EXPECT_TRUE(R.test(Main.index()));
  EXPECT_TRUE(R.test(A.index()));
  EXPECT_TRUE(R.test(Bp.index()));
  EXPECT_FALSE(R.test(Dead.index()));
  EXPECT_FALSE(R.test(DeadChild.index()));
}

TEST(Reachability, EliminateUnreachable) {
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId A = B.createProc("a", Main);
  VarId F = B.addFormal(A, "f");
  StmtId S = B.addStmt(A);
  B.addMod(S, F);
  ProcId Dead = B.createProc("dead", Main);
  VarId DeadVar = B.addLocal(Dead, "dv");
  StmtId DS = B.addStmt(Dead);
  B.addMod(DS, DeadVar);
  B.addCallStmt(Dead, A, {DeadVar});
  B.addCallStmt(Main, A, {G});
  Program P = B.finish();

  Program Clean = graph::eliminateUnreachable(P);
  EXPECT_EQ(Clean.numProcs(), 2u);
  EXPECT_EQ(Clean.numVars(), 2u); // g and f.
  EXPECT_EQ(Clean.numCallSites(), 1u);
  std::string Error;
  EXPECT_TRUE(Clean.verify(Error)) << Error;
  // Names survive.
  EXPECT_EQ(Clean.name(Clean.main()), "m");
  EXPECT_EQ(Clean.name(ProcId(1)), "a");
}

TEST(Reachability, KeepsEverythingWhenAllReachable) {
  BindingExample E;
  Program Clean = graph::eliminateUnreachable(E.P);
  EXPECT_EQ(Clean.numProcs(), E.P.numProcs());
  EXPECT_EQ(Clean.numCallSites(), E.P.numCallSites());
}

TEST(Dot, RendersBothGraphs) {
  BindingExample E;
  CallGraph CG(E.P);
  BindingGraph BG(E.P);
  std::string CgDot = callGraphToDot(E.P, CG);
  EXPECT_NE(CgDot.find("digraph callgraph"), std::string::npos);
  EXPECT_NE(CgDot.find("\"main\""), std::string::npos);
  std::string BgDot = bindingGraphToDot(E.P, BG);
  EXPECT_NE(BgDot.find("digraph binding"), std::string::npos);
  EXPECT_NE(BgDot.find("\"p.a\""), std::string::npos);
}

} // namespace
