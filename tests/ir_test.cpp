//===- tests/ir_test.cpp - Program model and builder tests --------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include "ir/AliasInfo.h"
#include "ir/Printer.h"
#include "ir/Program.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace ipse;
using namespace ipse::ir;

namespace {

/// Builds the running example used throughout the test suites:
///
///   program main; var g, h;
///     proc q(c);       begin c := g; end;
///     proc p(a, b); var x;
///       begin x := a; call q(b); h := 2; end;
///   begin call p(g, h); write g; end.
struct Example {
  Program P;
  ProcId Main, PProc, QProc;
  VarId G, H, A, Bv, X, C;
  CallSiteId CallP, CallQ;

  Example() {
    ProgramBuilder B;
    Main = B.createMain("main");
    G = B.addGlobal("g");
    H = B.addGlobal("h");

    QProc = B.createProc("q", Main);
    C = B.addFormal(QProc, "c");
    StmtId QS = B.addStmt(QProc);
    B.addMod(QS, C);
    B.addUse(QS, G);

    PProc = B.createProc("p", Main);
    A = B.addFormal(PProc, "a");
    Bv = B.addFormal(PProc, "b");
    X = B.addLocal(PProc, "x");
    StmtId PS1 = B.addStmt(PProc);
    B.addMod(PS1, X);
    B.addUse(PS1, A);
    CallQ = B.addCallStmt(PProc, QProc, {Bv});
    StmtId PS3 = B.addStmt(PProc);
    B.addMod(PS3, H);

    CallP = B.addCallStmt(Main, PProc, {G, H});
    StmtId MS = B.addStmt(Main);
    B.addUse(MS, G);

    P = B.finish();
  }
};

TEST(Program, BasicShape) {
  Example E;
  EXPECT_EQ(E.P.numProcs(), 3u);
  EXPECT_EQ(E.P.numVars(), 6u);
  EXPECT_EQ(E.P.numCallSites(), 2u);
  EXPECT_EQ(E.P.main(), E.Main);
  EXPECT_EQ(E.P.maxProcLevel(), 1u);
}

TEST(Program, Names) {
  Example E;
  EXPECT_EQ(E.P.name(E.PProc), "p");
  EXPECT_EQ(E.P.name(E.G), "g");
  EXPECT_EQ(E.P.name(E.C), "c");
}

TEST(Program, VariableKinds) {
  Example E;
  EXPECT_EQ(E.P.var(E.G).Kind, VarKind::Global);
  EXPECT_EQ(E.P.var(E.X).Kind, VarKind::Local);
  EXPECT_EQ(E.P.var(E.A).Kind, VarKind::Formal);
  EXPECT_EQ(E.P.var(E.A).FormalPos, 0u);
  EXPECT_EQ(E.P.var(E.Bv).FormalPos, 1u);
  EXPECT_TRUE(E.P.isGlobal(E.G));
  EXPECT_FALSE(E.P.isGlobal(E.X));
}

TEST(Program, Ownership) {
  Example E;
  EXPECT_TRUE(E.P.isLocalTo(E.X, E.PProc));
  EXPECT_TRUE(E.P.isLocalTo(E.A, E.PProc));
  EXPECT_FALSE(E.P.isLocalTo(E.G, E.PProc));
  EXPECT_TRUE(E.P.isLocalTo(E.G, E.Main));
}

TEST(Program, Visibility) {
  Example E;
  EXPECT_TRUE(E.P.isVisibleIn(E.G, E.PProc));
  EXPECT_TRUE(E.P.isVisibleIn(E.X, E.PProc));
  EXPECT_FALSE(E.P.isVisibleIn(E.X, E.QProc));
  EXPECT_FALSE(E.P.isVisibleIn(E.C, E.PProc));
  EXPECT_TRUE(E.P.isVisibleIn(E.G, E.Main));
}

TEST(Program, VarLevels) {
  Example E;
  EXPECT_EQ(E.P.varLevel(E.G), 0u);
  EXPECT_EQ(E.P.varLevel(E.X), 1u);
  EXPECT_EQ(E.P.varLevel(E.C), 1u);
}

TEST(Program, CallSites) {
  Example E;
  const CallSite &CP = E.P.callSite(E.CallP);
  EXPECT_EQ(CP.Caller, E.Main);
  EXPECT_EQ(CP.Callee, E.PProc);
  ASSERT_EQ(CP.Actuals.size(), 2u);
  EXPECT_TRUE(CP.Actuals[0].isVariable());
  EXPECT_EQ(CP.Actuals[0].Var, E.G);
  EXPECT_EQ(CP.Actuals[1].Var, E.H);
}

TEST(Program, VerifyAcceptsValid) {
  Example E;
  std::string Error;
  EXPECT_TRUE(E.P.verify(Error)) << Error;
  EXPECT_TRUE(Error.empty());
}

TEST(Program, NestingTree) {
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  ProcId Outer = B.createProc("outer", Main);
  ProcId Inner = B.createProc("inner", Outer);
  ProcId Deep = B.createProc("deep", Inner);
  B.addStmt(Main);
  Program P = B.finish();

  EXPECT_EQ(P.proc(Outer).Level, 1u);
  EXPECT_EQ(P.proc(Inner).Level, 2u);
  EXPECT_EQ(P.proc(Deep).Level, 3u);
  EXPECT_EQ(P.maxProcLevel(), 3u);
  EXPECT_TRUE(P.isAncestorOrSelf(Main, Deep));
  EXPECT_TRUE(P.isAncestorOrSelf(Outer, Deep));
  EXPECT_TRUE(P.isAncestorOrSelf(Deep, Deep));
  EXPECT_FALSE(P.isAncestorOrSelf(Deep, Outer));
  ASSERT_EQ(P.proc(Outer).Nested.size(), 1u);
  EXPECT_EQ(P.proc(Outer).Nested[0], Inner);
}

TEST(Program, NestedVisibilityAndCalls) {
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId Outer = B.createProc("outer", Main);
  VarId OV = B.addLocal(Outer, "ov");
  ProcId Inner = B.createProc("inner", Outer);
  StmtId S = B.addStmt(Inner);
  B.addMod(S, OV); // Inner may modify outer's local.
  B.addMod(S, G);
  B.addCallStmt(Outer, Inner, {});
  B.addCallStmt(Inner, Outer, {}); // Recursion upward is legal.
  B.addCallStmt(Main, Outer, {});
  Program P = B.finish();

  EXPECT_TRUE(P.isVisibleIn(OV, Inner));
  std::string Error;
  EXPECT_TRUE(P.verify(Error)) << Error;
}

TEST(ProgramBuilder, ArityMismatchDiesInFinish) {
  // addCall does not check arity (verify does); finish() must abort.
  ASSERT_DEATH(
      {
        ProgramBuilder B;
        ProcId Main = B.createMain("m");
        ProcId Q = B.createProc("q", Main);
        B.addFormal(Q, "f");
        B.addCallStmt(Main, Q, {}); // Missing the one actual.
        B.finish();
      },
      "arity mismatch");
}

TEST(ProgramBuilder, ScopeViolationDiesInFinish) {
  // Calling a procedure that is not lexically visible must be rejected.
  ASSERT_DEATH(
      {
        ProgramBuilder B;
        ProcId Main = B.createMain("m");
        ProcId Outer = B.createProc("outer", Main);
        ProcId Inner = B.createProc("inner", Outer);
        ProcId Other = B.createProc("other", Main);
        (void)Inner;
        B.addCallStmt(Other, Inner, {}); // Inner is hidden inside Outer.
        B.finish();
      },
      "lexical scoping");
}

TEST(Printer, RendersProgram) {
  Example E;
  std::string Text = printProgram(E.P);
  EXPECT_NE(Text.find("program main"), std::string::npos);
  EXPECT_NE(Text.find("proc p(a, b)"), std::string::npos);
  EXPECT_NE(Text.find("call q(b)"), std::string::npos);
  EXPECT_NE(Text.find("mod{x}"), std::string::npos);
}

TEST(Printer, QualifiedNames) {
  Example E;
  EXPECT_EQ(qualifiedName(E.P, E.G), "g");
  EXPECT_EQ(qualifiedName(E.P, E.X), "p.x");
  EXPECT_EQ(qualifiedName(E.P, E.C), "q.c");
}

TEST(AliasInfo, StoresNormalizedPairs) {
  Example E;
  AliasInfo AI(E.P);
  AI.addPair(E.PProc, E.Bv, E.A); // Stored with the smaller id first.
  ASSERT_EQ(AI.pairs(E.PProc).size(), 1u);
  EXPECT_EQ(AI.pairs(E.PProc)[0].first, E.A);
  EXPECT_EQ(AI.pairs(E.PProc)[0].second, E.Bv);
  EXPECT_EQ(AI.totalPairs(), 1u);
  EXPECT_TRUE(AI.pairs(E.QProc).empty());
}

TEST(StrongId, DefaultIsInvalid) {
  VarId V;
  EXPECT_FALSE(V.isValid());
  VarId W(3);
  EXPECT_TRUE(W.isValid());
  EXPECT_EQ(W.index(), 3u);
  EXPECT_NE(V, W);
}

} // namespace
