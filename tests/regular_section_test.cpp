//===- tests/regular_section_test.cpp - §6 RSD lattice and solver tests -------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include "analysis/RegularSection.h"
#include "analysis/RegularSectionAnalysis.h"
#include "graph/BindingGraph.h"
#include "graph/CallGraph.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace ipse;
using namespace ipse::analysis;
using namespace ipse::ir;

namespace {

// Symbols for subscripts: fabricate variable ids (the lattice itself never
// dereferences them).
const VarId SymI(100), SymJ(101), SymK(102);

TEST(Subscript, Equality) {
  EXPECT_EQ(Subscript::star(), Subscript::star());
  EXPECT_EQ(Subscript::constant(3), Subscript::constant(3));
  EXPECT_NE(Subscript::constant(3), Subscript::constant(4));
  EXPECT_EQ(Subscript::symbol(SymI), Subscript::symbol(SymI));
  EXPECT_NE(Subscript::symbol(SymI), Subscript::symbol(SymJ));
  EXPECT_NE(Subscript::symbol(SymI), Subscript::constant(100));
}

TEST(Subscript, Meet) {
  EXPECT_EQ(Subscript::constant(3).meet(Subscript::constant(3)),
            Subscript::constant(3));
  EXPECT_TRUE(Subscript::constant(3).meet(Subscript::constant(4)).isStar());
  EXPECT_TRUE(Subscript::symbol(SymI).meet(Subscript::symbol(SymJ)).isStar());
  EXPECT_TRUE(Subscript::star().meet(Subscript::constant(1)).isStar());
}

TEST(Subscript, MayEqual) {
  EXPECT_TRUE(Subscript::constant(3).mayEqual(Subscript::constant(3)));
  EXPECT_FALSE(Subscript::constant(3).mayEqual(Subscript::constant(4)));
  // Symbols are opaque: everything may coincide.
  EXPECT_TRUE(Subscript::symbol(SymI).mayEqual(Subscript::symbol(SymJ)));
  EXPECT_TRUE(Subscript::symbol(SymI).mayEqual(Subscript::constant(7)));
  EXPECT_TRUE(Subscript::star().mayEqual(Subscript::constant(7)));
}

/// Figure 3's lattice: A(I,J)/A(K,J)/A(K,L) at the top, A(*,J)/A(K,*) in
/// the middle, A(*,*) at the bottom.
TEST(RegularSection, Figure3Relations) {
  RegularSection AIJ = RegularSection::section2(Subscript::symbol(SymI),
                                                Subscript::symbol(SymJ));
  RegularSection AKJ = RegularSection::section2(Subscript::symbol(SymK),
                                                Subscript::symbol(SymJ));
  RegularSection AStarJ =
      RegularSection::section2(Subscript::star(), Subscript::symbol(SymJ));
  RegularSection AKStar =
      RegularSection::section2(Subscript::symbol(SymK), Subscript::star());
  RegularSection Whole = RegularSection::whole(2);

  // meet(A(I,J), A(K,J)) = A(*,J), as in the figure.
  EXPECT_EQ(AIJ.meet(AKJ), AStarJ);
  // meet(A(*,J), A(K,*)) = A(*,*).
  EXPECT_EQ(AStarJ.meet(AKStar), Whole);
  // Containment follows the drawing: lower elements contain upper ones.
  EXPECT_TRUE(AStarJ.contains(AIJ));
  EXPECT_TRUE(AStarJ.contains(AKJ));
  EXPECT_FALSE(AStarJ.contains(AKStar));
  EXPECT_TRUE(Whole.contains(AStarJ));
  EXPECT_TRUE(Whole.contains(AKStar));
  // Depths: element 1, row/column 2, whole 3.
  EXPECT_EQ(AIJ.depth(), 1u);
  EXPECT_EQ(AStarJ.depth(), 2u);
  EXPECT_EQ(Whole.depth(), 3u);
}

TEST(RegularSection, NoneIsMeetIdentity) {
  RegularSection None = RegularSection::none(2);
  RegularSection AIJ = RegularSection::section2(Subscript::symbol(SymI),
                                                Subscript::symbol(SymJ));
  EXPECT_EQ(None.meet(AIJ), AIJ);
  EXPECT_EQ(AIJ.meet(None), AIJ);
  EXPECT_EQ(None.meet(None), None);
  EXPECT_EQ(None.depth(), 0u);
  EXPECT_TRUE(AIJ.contains(None));
  EXPECT_FALSE(None.contains(AIJ));
}

TEST(RegularSection, MeetIsCommutativeAssociativeIdempotent) {
  RegularSection A = RegularSection::section2(Subscript::symbol(SymI),
                                              Subscript::constant(1));
  RegularSection B = RegularSection::section2(Subscript::symbol(SymI),
                                              Subscript::constant(2));
  RegularSection C = RegularSection::section2(Subscript::star(),
                                              Subscript::constant(1));
  EXPECT_EQ(A.meet(B), B.meet(A));
  EXPECT_EQ(A.meet(B).meet(C), A.meet(B.meet(C)));
  EXPECT_EQ(A.meet(A), A);
}

TEST(RegularSection, MayIntersect) {
  RegularSection Row1 = RegularSection::section2(Subscript::constant(1),
                                                 Subscript::star());
  RegularSection Row2 = RegularSection::section2(Subscript::constant(2),
                                                 Subscript::star());
  RegularSection ColJ = RegularSection::section2(Subscript::star(),
                                                 Subscript::symbol(SymJ));
  EXPECT_FALSE(Row1.mayIntersect(Row2)); // Distinct constant rows.
  EXPECT_TRUE(Row1.mayIntersect(ColJ));  // A row always crosses a column.
  EXPECT_FALSE(Row1.mayIntersect(RegularSection::none(2)));
}

TEST(RegularSection, ToString) {
  EXPECT_EQ(RegularSection::none(2).toString(), "none");
  EXPECT_EQ(RegularSection::whole(2).toString(), "(*,*)");
  EXPECT_EQ(RegularSection::section2(Subscript::constant(3),
                                     Subscript::star())
                .toString(),
            "(3,*)");
}

/// Program for the β-based solves:
///
///   main: var A(2-d global, passed around by reference)
///   proc work(w /*1-d*/);     lrsd(w) = (5)        [element 5]
///   proc rowuser(r /*2-d*/);  calls work(r row i)  [row binding]
///   main calls rowuser(A).
struct SectionExample {
  Program P;
  ProcId Main, Work, RowUser;
  VarId A, W, R, IVar;
  graph::EdgeId RowEdge, TopEdge;

  SectionExample() {
    ProgramBuilder B;
    Main = B.createMain("main");
    A = B.addGlobal("A");
    Work = B.createProc("work", Main);
    W = B.addFormal(Work, "w");
    StmtId SW = B.addStmt(Work);
    B.addMod(SW, W);
    RowUser = B.createProc("rowuser", Main);
    R = B.addFormal(RowUser, "r");
    IVar = B.addFormal(RowUser, "i");
    B.addCallStmt(RowUser, Work, {R}); // Row of r, annotated below.
    B.addCallStmt(Main, RowUser, {A, A}); // Second actual arbitrary.
    P = B.finish();
  }
};

TEST(RsdSolver, RowBindingComposesAcrossTheChain) {
  SectionExample E;
  graph::BindingGraph BG(E.P);
  RsdProblem Problem(E.P, BG);
  Problem.setFormalArray(E.W, 1);
  Problem.setFormalArray(E.R, 2);
  Problem.setLocalSection(E.W, RegularSection::section1(
                                   Subscript::constant(5)));

  // Find the β edge r -> w and annotate it: w is row `i` of r.
  graph::NodeId RNode = BG.nodeOf(E.R);
  ASSERT_NE(RNode, graph::BindingGraph::NoNode);
  ASSERT_EQ(BG.graph().succs(RNode).size(), 1u);
  graph::EdgeId Edge = BG.graph().succs(RNode)[0].Edge;
  Problem.setEdgeBinding(Edge,
                         SectionBinding::rowOf(Subscript::symbol(E.IVar)));

  RsdResult Result = solveRsd(Problem);
  // rsd(w) = (5); rsd(r) = (i, 5): row binding plus the element effect.
  EXPECT_EQ(Result.of(E.W).toString(), "(5)");
  RegularSection Expected = RegularSection::section2(
      Subscript::symbol(E.IVar), Subscript::constant(5));
  EXPECT_EQ(Result.of(E.R), Expected);
  // Strictly finer than the whole array: the precision §6 is after.
  EXPECT_FALSE(Result.of(E.R).isWhole());
}

TEST(RsdSolver, CycleWithIdentityBindingConverges) {
  // p(x) calls itself passing x: rsd(x) must converge to lrsd(x), not
  // descend (the paper's divide-and-conquer observation g_p(x) ⊓ x = x).
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("G");
  ProcId PProc = B.createProc("p", Main);
  VarId X = B.addFormal(PProc, "x");
  StmtId S = B.addStmt(PProc);
  B.addMod(S, X);
  B.addCallStmt(PProc, PProc, {X});
  B.addCallStmt(Main, PProc, {G});
  Program P = B.finish();

  graph::BindingGraph BG(P);
  RsdProblem Problem(P, BG);
  Problem.setFormalArray(X, 1);
  Problem.setLocalSection(X, RegularSection::section1(
                                 Subscript::constant(1)));
  RsdResult Result = solveRsd(Problem);
  EXPECT_EQ(Result.of(X).toString(), "(1)");
  // Convergence took a bounded number of rounds despite the cycle.
  EXPECT_LE(Result.MaxComponentRounds, 3u);
}

TEST(RsdSolver, CycleWithShiftingSymbolsWidens) {
  // p(x, i) calls p(x, j): the row index symbol changes around the cycle,
  // so the solution must widen that dimension to *.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("G");
  ProcId PProc = B.createProc("p", Main);
  VarId X = B.addFormal(PProc, "x");
  VarId IV = B.addFormal(PProc, "i");
  VarId JV = B.addLocal(PProc, "j");
  StmtId S = B.addStmt(PProc);
  B.addMod(S, X);
  B.addCallStmt(PProc, PProc, {X, JV});
  B.addCallStmt(Main, PProc, {G, G});
  Program P = B.finish();

  graph::BindingGraph BG(P);
  RsdProblem Problem(P, BG);
  Problem.setFormalArray(X, 2);
  // Local effect: element (i, 3).
  Problem.setLocalSection(X, RegularSection::section2(
                                 Subscript::symbol(IV),
                                 Subscript::constant(3)));
  RsdResult Result = solveRsd(Problem);
  // Around the cycle, i becomes the local j (widened to * because j is
  // local to the callee and meaningless in the caller's frame... then the
  // meet of (i,3) and (*,3) is (*,3)).
  EXPECT_EQ(Result.of(X).toString(), "(*,3)");
}

TEST(GlobalSections, PropagateOverCallGraph) {
  // main -> a -> b; b writes row 2 of global A; a writes column k.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId A = B.addGlobal("A");
  ProcId PA = B.createProc("a", Main);
  VarId K = B.addFormal(PA, "k");
  ProcId PB = B.createProc("b", Main);
  B.addCallStmt(PA, PB, {});
  B.addCallStmt(Main, PA, {A});
  Program P = B.finish();

  graph::CallGraph CG(P);
  GlobalSectionProblem Problem(P, CG);
  Problem.setGlobalArray(A, 2);
  Problem.setLocalSection(PB, A,
                          RegularSection::section2(Subscript::constant(2),
                                                   Subscript::star()));
  Problem.setLocalSection(PA, A,
                          RegularSection::section2(Subscript::star(),
                                                   Subscript::symbol(K)));
  GlobalSectionResult Result = solveGlobalSections(Problem);

  // b: row 2 only.
  EXPECT_EQ(Result.of(PB, A).toString(), "(2,*)");
  // a: row 2 meets column k = whole array.
  EXPECT_TRUE(Result.of(PA, A).isWhole());
  // main: the symbol k is not visible, but the set is already (*,*).
  EXPECT_TRUE(Result.of(Main, A).isWhole());
}

TEST(GlobalSections, SymbolsWidenWhenLeavingScope) {
  // b(k) writes row k of A; a calls b(5)... with an expression actual the
  // symbol k cannot be named in a, so a sees row *.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId A = B.addGlobal("A");
  ProcId PB = B.createProc("b", Main);
  VarId K = B.addFormal(PB, "k");
  ProcId PA = B.createProc("a", Main);
  StmtId CallStmt = B.addStmt(PA);
  B.addCall(CallStmt, PB, std::vector<Actual>{Actual::expression()});
  B.addCallStmt(Main, PA, {});
  Program P = B.finish();

  graph::CallGraph CG(P);
  GlobalSectionProblem Problem(P, CG);
  Problem.setGlobalArray(A, 2);
  Problem.setLocalSection(PB, A,
                          RegularSection::section2(Subscript::symbol(K),
                                                   Subscript::star()));
  GlobalSectionResult Result = solveGlobalSections(Problem);
  EXPECT_EQ(Result.of(PB, A).toString(),
            "(v" + std::to_string(K.index()) + ",*)");
  EXPECT_TRUE(Result.of(PA, A).isWhole());
}

TEST(GlobalSections, FormalActualSymbolTranslation) {
  // b(k) writes row k; a(i) calls b(i): a sees row i (translated), and
  // main calling a(g) sees row g.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId A = B.addGlobal("A");
  VarId G = B.addGlobal("gidx");
  ProcId PB = B.createProc("b", Main);
  VarId K = B.addFormal(PB, "k");
  ProcId PA = B.createProc("a", Main);
  VarId IV = B.addFormal(PA, "i");
  B.addCallStmt(PA, PB, {IV});
  B.addCallStmt(Main, PA, {G});
  Program P = B.finish();

  graph::CallGraph CG(P);
  GlobalSectionProblem Problem(P, CG);
  Problem.setGlobalArray(A, 2);
  Problem.setLocalSection(PB, A,
                          RegularSection::section2(Subscript::symbol(K),
                                                   Subscript::star()));
  GlobalSectionResult Result = solveGlobalSections(Problem);
  EXPECT_EQ(Result.of(PA, A), RegularSection::section2(
                                  Subscript::symbol(IV), Subscript::star()));
  EXPECT_EQ(Result.of(Main, A), RegularSection::section2(
                                    Subscript::symbol(G), Subscript::star()));
}

} // namespace
