//===- tests/incremental_test.cpp - AnalysisSession tests ---------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Tests for the incremental analysis engine: handcrafted delta scenarios
// asserting both results and the *tier* each flush took (the SessionStats
// counters), plus the randomized equivalence harness — random edit
// sequences over several program shapes, checking after every single edit
// that the session's answers are bit-for-bit identical to a fresh batch
// SideEffectAnalyzer (and, on small instances, to the iterative equation-(1)
// oracle).
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "baselines/IterativeSolver.h"
#include "incremental/AnalysisSession.h"
#include "graph/Reachability.h"
#include "incremental/Edit.h"
#include "ir/ProgramBuilder.h"
#include "synth/EditGen.h"
#include "synth/ProgramGen.h"

#include "TestSeed.h"

#include <gtest/gtest.h>

using namespace ipse;
using namespace ipse::incremental;
using analysis::AnalyzerOptions;
using analysis::EffectKind;
using analysis::SideEffectAnalyzer;
using ir::ProcId;
using ir::Program;
using ir::ProgramBuilder;
using ir::StmtId;
using ir::VarId;

namespace {

/// Deterministic alias pairs for MOD/USE checks: in every procedure with at
/// least two formals, alias the first two.
ir::AliasInfo someAliases(const Program &P) {
  ir::AliasInfo Aliases(P);
  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    const ir::Procedure &Pr = P.proc(ProcId(I));
    if (Pr.Formals.size() >= 2)
      Aliases.addPair(ProcId(I), Pr.Formals[0], Pr.Formals[1]);
  }
  return Aliases;
}

/// Asserts that every query of \p S matches a fresh batch analysis of the
/// session's current program.  \p Context goes into failure messages.
void expectEquivalent(AnalysisSession &S, const std::string &Context) {
  const Program &P = S.program();
  SideEffectAnalyzer Mod(P);
  AnalyzerOptions UseOpts;
  UseOpts.Kind = EffectKind::Use;
  SideEffectAnalyzer Use(P, UseOpts);
  ir::AliasInfo Aliases = someAliases(P);

  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    ProcId Proc(I);
    EXPECT_EQ(S.gmod(Proc), Mod.gmod(Proc))
        << Context << ": GMOD(" << P.name(Proc) << ")";
    EXPECT_EQ(S.guse(Proc), Use.gmod(Proc))
        << Context << ": GUSE(" << P.name(Proc) << ")";
    EXPECT_EQ(S.imodPlus(Proc, EffectKind::Mod), Mod.imodPlus(Proc))
        << Context << ": IMOD+(" << P.name(Proc) << ")";
    EXPECT_EQ(S.imodPlus(Proc, EffectKind::Use), Use.imodPlus(Proc))
        << Context << ": IUSE+(" << P.name(Proc) << ")";
    EXPECT_EQ(S.imod(Proc, EffectKind::Mod), Mod.imod(Proc))
        << Context << ": IMOD(" << P.name(Proc) << ")";
    for (VarId F : P.proc(Proc).Formals) {
      EXPECT_EQ(S.rmodContains(F), Mod.rmodContains(F))
          << Context << ": RMOD bit of " << P.name(F);
      EXPECT_EQ(S.rmodContains(F, EffectKind::Use), Use.rmodContains(F))
          << Context << ": RUSE bit of " << P.name(F);
    }
  }
  for (std::uint32_t I = 0; I != P.numStmts(); ++I) {
    StmtId St(I);
    EXPECT_EQ(S.dmod(St), Mod.dmod(St)) << Context << ": DMOD(s" << I << ")";
    EXPECT_EQ(S.duse(St), Use.dmod(St)) << Context << ": DUSE(s" << I << ")";
    EXPECT_EQ(S.mod(St, Aliases), Mod.mod(St, Aliases))
        << Context << ": MOD(s" << I << ")";
    EXPECT_EQ(S.use(St, Aliases), Use.mod(St, Aliases))
        << Context << ": USE(s" << I << ")";
  }
  for (std::uint32_t I = 0; I != P.numCallSites(); ++I) {
    ir::CallSiteId C(I);
    EXPECT_EQ(S.dmod(C), Mod.dmod(C)) << Context << ": DMOD(c" << I << ")";
  }

  // The undecomposed equation-(1) fixpoint is the semantic definition;
  // cross-check on instances small enough for round-robin iteration.  The
  // oracle matches the decomposed pipeline only under the paper's §3.3
  // precondition (no unreachable *nested* procedures — their binding
  // events are attributed to lexical ancestors by β but invisible to
  // equation (1); see UnreachableNestedProcedures in property_test.cpp),
  // and edits routinely create temporarily-unreachable procedures.
  bool OracleApplies =
      P.maxProcLevel() <= 1 ||
      graph::reachableProcs(P).count() == P.numProcs();
  if (P.numProcs() <= 16 && OracleApplies) {
    analysis::VarMasks Masks(P);
    graph::CallGraph CG(P);
    analysis::LocalEffects Local(P, Masks, EffectKind::Mod);
    baselines::IterativeResult Oracle =
        baselines::solveIterative(P, CG, Masks, Local);
    for (std::uint32_t I = 0; I != P.numProcs(); ++I)
      EXPECT_EQ(S.gmod(ProcId(I)), Oracle.GMod.of(ProcId(I)))
          << Context << ": oracle GMOD(" << P.name(ProcId(I)) << ")";
  }
}

//===----------------------------------------------------------------------===//
// Handcrafted delta scenarios.
//===----------------------------------------------------------------------===//

/// main(g, h); p(a){ mod a }; q(){ mod g; call p(h) }; main calls q.
struct SimpleProgram {
  ProcId Main, PP, QP;
  VarId G, H, A;
  StmtId PS, QS;
  Program P;

  SimpleProgram() {
    ProgramBuilder B;
    Main = B.createMain("main");
    G = B.addGlobal("g");
    H = B.addGlobal("h");
    PP = B.createProc("p", Main);
    A = B.addFormal(PP, "a");
    PS = B.addStmt(PP);
    B.addMod(PS, A);
    QP = B.createProc("q", Main);
    QS = B.addStmt(QP);
    B.addMod(QS, G);
    B.addCall(QS, PP, std::vector<VarId>{H});
    B.addCallStmt(Main, QP, {});
    P = B.finish();
  }
};

TEST(IncrementalSession, MatchesBatchInitially) {
  SimpleProgram SP;
  AnalysisSession S(std::move(SP.P));
  expectEquivalent(S, "initial");
  // The constructor leaves the session clean; queries need no flush.
  EXPECT_EQ(S.stats().Flushes, 0u);
  EXPECT_EQ(S.stats().FullRebuilds, 0u);
}

TEST(IncrementalSession, EffectDeltaTakesFastPath) {
  SimpleProgram SP;
  AnalysisSession S(std::move(SP.P));
  (void)S.gmod(SP.Main); // Settle.

  S.addMod(SP.QS, SP.H);
  EXPECT_TRUE(S.gmod(SP.QP).test(SP.H.index()));
  EXPECT_TRUE(S.gmod(SP.Main).test(SP.H.index()));
  EXPECT_EQ(S.stats().EffectOnlyFlushes, 1u);
  EXPECT_EQ(S.stats().IntraSccFlushes, 0u);
  EXPECT_EQ(S.stats().Recondensations, 0u);
  EXPECT_EQ(S.stats().FullRebuilds, 0u);
  expectEquivalent(S, "after addMod");

  // Removing it again restores the old answer, still on the fast path.
  // (h stays in GMOD(q) regardless: the call p(h) binds it to p's
  // modified formal.)
  EXPECT_TRUE(S.removeMod(SP.QS, SP.H));
  EXPECT_TRUE(S.gmod(SP.QP).test(SP.H.index()));
  EXPECT_EQ(S.stats().EffectOnlyFlushes, 2u);
  EXPECT_EQ(S.stats().FullRebuilds, 0u);
  expectEquivalent(S, "after removeMod");

  // Removing an absent entry is a no-op that does not dirty anything.
  std::uint64_t Gen = S.generation();
  EXPECT_FALSE(S.removeMod(SP.QS, SP.H));
  EXPECT_EQ(S.generation(), Gen);
}

TEST(IncrementalSession, AbsorbedEffectDeltaSkipsGModCone) {
  // r calls p; p mods g, so GMOD(r) already contains g.  Adding "mod g"
  // to r's own body grows IMOD+(r) by a bit GMOD(r) already holds — the
  // least fixed point is unchanged, and the monotone-growth prune must
  // service the edit without re-evaluating a single condensation
  // component.  (r must not be a lexical ancestor of p, else the §3.3
  // nesting extension absorbs the edit before IMOD+ even changes.)
  ProgramBuilder B;
  ProcId Main = B.createMain("main");
  VarId G = B.addGlobal("g");
  ProcId PP = B.createProc("p", Main);
  B.addMod(B.addStmt(PP), G);
  ProcId RP = B.createProc("r", Main);
  StmtId RS = B.addStmt(RP);
  B.addCall(RS, PP, std::vector<VarId>{});
  B.addCallStmt(Main, RP, {});
  AnalysisSession S(B.finish());
  EXPECT_TRUE(S.gmod(RP).test(G.index()));
  std::uint64_t CompsBefore = S.stats().ComponentsRecomputed;

  S.addMod(RS, G);
  EXPECT_TRUE(S.gmod(RP).test(G.index()));
  EXPECT_EQ(S.stats().ComponentsRecomputed, CompsBefore);
  EXPECT_EQ(S.stats().EffectOnlyFlushes, 1u);
  expectEquivalent(S, "after absorbed addMod");

  // Removing the absorbed bit shrinks IMOD+(r) and must NOT be pruned:
  // the engine has to re-derive that g still reaches GMOD(r) via p.
  EXPECT_TRUE(S.removeMod(RS, G));
  EXPECT_TRUE(S.gmod(RP).test(G.index()));
  EXPECT_GT(S.stats().ComponentsRecomputed, CompsBefore);
  expectEquivalent(S, "after removing the absorbed bit");
}

TEST(IncrementalSession, RModRepropagatesOnFormalFlip) {
  SimpleProgram SP;
  AnalysisSession S(std::move(SP.P));
  // q's call p(h) already puts h into GMOD(q) via RMOD(a).  Dropping
  // "mod a" must flip RMOD(a) off and drain h back out of GMOD(q).
  EXPECT_TRUE(S.rmodContains(SP.A));
  EXPECT_TRUE(S.gmod(SP.QP).test(SP.H.index()));
  EXPECT_TRUE(S.removeMod(SP.PS, SP.A));
  EXPECT_FALSE(S.rmodContains(SP.A));
  EXPECT_FALSE(S.gmod(SP.QP).test(SP.H.index()));
  EXPECT_EQ(S.stats().EffectOnlyFlushes, 1u);
  EXPECT_GE(S.stats().RModResolves, 1u);
  expectEquivalent(S, "after RMOD flip");
}

TEST(IncrementalSession, CrossComponentCallAddRecondenses) {
  SimpleProgram SP;
  StmtId QS = SP.QS;
  ProcId PP = SP.PP, QP = SP.QP;
  VarId G = SP.G;
  AnalysisSession S(std::move(SP.P));
  (void)S.gmod(QP);

  // p and q sit in different (singleton) components; a new edge q -> p is
  // cross-component and must trigger the re-condensation fallback.
  S.addCall(QS, PP, {ir::Actual::variable(G)});
  EXPECT_TRUE(S.gmod(QP).test(G.index()));
  EXPECT_EQ(S.stats().Recondensations, 1u);
  EXPECT_EQ(S.stats().FullRebuilds, 0u);
  expectEquivalent(S, "after cross-component addCall");
}

TEST(IncrementalSession, IntraComponentCallKeepsCondensation) {
  // main calls p; p and q call each other (one SCC).
  ProgramBuilder B;
  ProcId Main = B.createMain("main");
  VarId G = B.addGlobal("g");
  ProcId PP = B.createProc("p", Main);
  ProcId QP = B.createProc("q", Main);
  StmtId PS = B.addStmt(PP);
  B.addCall(PS, QP, std::vector<VarId>{});
  StmtId QS = B.addStmt(QP);
  B.addMod(QS, G);
  B.addCall(QS, PP, std::vector<VarId>{});
  B.addCallStmt(Main, PP, {});
  AnalysisSession S(B.finish());
  (void)S.gmod(Main);

  // Another p -> q edge stays inside the SCC: β is rebuilt but the
  // condensation survives.
  ir::CallSiteId Extra = S.addCall(PS, QP, {});
  (void)S.gmod(Main);
  EXPECT_EQ(S.stats().IntraSccFlushes, 1u);
  EXPECT_EQ(S.stats().Recondensations, 0u);
  expectEquivalent(S, "after intra-SCC addCall");

  // Removing an intra-component edge can split the SCC, so the engine must
  // re-condense.
  S.removeCall(Extra);
  (void)S.gmod(Main);
  EXPECT_EQ(S.stats().Recondensations, 1u);
  expectEquivalent(S, "after intra-SCC removeCall");
}

TEST(IncrementalSession, UniverseDeltaRebuilds) {
  SimpleProgram SP;
  ProcId QP = SP.QP;
  StmtId QS = SP.QS;
  AnalysisSession S(std::move(SP.P));
  (void)S.gmod(QP);

  VarId NewG = S.addGlobal("brand_new");
  S.addMod(QS, NewG);
  EXPECT_TRUE(S.gmod(QP).test(NewG.index()));
  EXPECT_EQ(S.stats().FullRebuilds, 1u);
  expectEquivalent(S, "after addGlobal");

  ProcId R = S.addProc("r", S.program().main());
  StmtId RS = S.addStmt(R);
  S.addMod(RS, NewG);
  S.addCall(RS, QP, {});
  (void)S.gmod(R);
  EXPECT_EQ(S.stats().FullRebuilds, 2u);
  expectEquivalent(S, "after addProc");

  // r is a leaf and nothing calls it; removing it re-indexes everything.
  S.removeProc(R);
  expectEquivalent(S, "after removeProc");
}

TEST(IncrementalSession, EditsAreLazyAndBatched) {
  SimpleProgram SP;
  StmtId QS = SP.QS;
  VarId G = SP.G, H = SP.H;
  ProcId Main = SP.Main;
  AnalysisSession S(std::move(SP.P));
  (void)S.gmod(Main);
  std::uint64_t FlushesBefore = S.stats().Flushes;

  S.addMod(QS, H);
  S.addUse(QS, G);
  S.addUse(QS, H);
  EXPECT_TRUE(S.removeUse(QS, G));
  EXPECT_NE(S.generation(), S.cleanGeneration());

  (void)S.gmod(Main); // One flush services the whole batch.
  EXPECT_EQ(S.cleanGeneration(), S.generation());
  EXPECT_EQ(S.stats().Flushes, FlushesBefore + 1);
  expectEquivalent(S, "after batched edits");
}

TEST(IncrementalSession, RemoveCallReportsMovedId) {
  SimpleProgram SP;
  ProcId Main = SP.Main, QP = SP.QP;
  AnalysisSession S(std::move(SP.P));

  // Two call sites exist: c0 = q->p, c1 = main->q.  Removing c0 moves c1
  // into its slot; removing the (new) last site moves nothing.
  ir::CallSiteId Moved = S.removeCall(ir::CallSiteId(0));
  EXPECT_TRUE(Moved.isValid());
  EXPECT_EQ(Moved.index(), 1u);
  EXPECT_EQ(S.program().callSite(ir::CallSiteId(0)).Caller, Main);
  expectEquivalent(S, "after removeCall with move");

  ir::CallSiteId None = S.removeCall(ir::CallSiteId(0));
  EXPECT_FALSE(None.isValid());
  EXPECT_EQ(S.program().numCallSites(), 0u);
  (void)QP;
  expectEquivalent(S, "after removing last call");
}

TEST(IncrementalSession, ModOnlySessionSkipsUse) {
  SimpleProgram SP;
  ProcId QP = SP.QP;
  StmtId QS = SP.QS;
  VarId H = SP.H;
  SessionOptions Opts;
  Opts.TrackUse = false;
  AnalysisSession S(std::move(SP.P), Opts);

  S.addUse(QS, H); // Applied to the program, but no USE pipeline exists.
  S.addMod(QS, H);
  EXPECT_TRUE(S.gmod(QP).test(H.index()));
  SideEffectAnalyzer Mod(S.program());
  EXPECT_EQ(S.gmod(QP), Mod.gmod(QP));
}

//===----------------------------------------------------------------------===//
// Randomized equivalence harness.
//===----------------------------------------------------------------------===//

Program makeShape(unsigned Shape, std::uint64_t Seed) {
  switch (Shape % 5) {
  case 0: {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 10;
    Cfg.NumGlobals = 6;
    return synth::generateProgram(Cfg); // Two-level, random recursion.
  }
  case 1: {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 12;
    Cfg.NumGlobals = 4;
    Cfg.MaxNestDepth = 3; // Multi-level: exercises the §4 solver + Below.
    return synth::generateProgram(Cfg);
  }
  case 2:
    return synth::makeCycleProgram(8, 2); // One big SCC in C and β.
  case 3:
    return synth::makeLayeredProgram(3, 4, 2, 2, 4, Seed); // DAG.
  default:
    return synth::makeFortranStyleProgram(12, 8, 3, Seed);
  }
}

/// One random session: ~EditsPerRun edits, equivalence checked after every
/// single edit.
void runRandomSession(unsigned Shape, std::uint64_t Seed, unsigned EditsPerRun,
                      bool AllowUniverse) {
  AnalysisSession S(makeShape(Shape, Seed));
  synth::EditGenConfig Cfg;
  Cfg.Seed = Seed * 977 + Shape;
  Cfg.AllowUniverse = AllowUniverse;
  synth::EditGen Gen(Cfg);

  expectEquivalent(S, "shape " + std::to_string(Shape) + " seed " +
                          std::to_string(Seed) + " initial");
  for (unsigned I = 0; I != EditsPerRun; ++I) {
    std::optional<Edit> E = Gen.next(S.program());
    if (!E)
      break;
    std::string Context = "shape " + std::to_string(Shape) + " seed " +
                          std::to_string(Seed) + " edit " + std::to_string(I) +
                          " (" + toString(S.program(), *E) + ")";
    applyEdit(S, *E);
    std::string VerifyError;
    ASSERT_TRUE(S.program().verify(VerifyError))
        << Context << ": " << VerifyError;
    expectEquivalent(S, Context);
    if (::testing::Test::HasFailure())
      return; // One divergence produces enough output.
  }
}

TEST(IncrementalEquivalence, RandomEditSequences) {
  // 5 shapes x 24 seeds = 120 independent edit sequences, every query
  // compared against fresh batch analyzers after every edit.
  const std::uint64_t Base = testseed::baseSeed(1);
  for (unsigned Shape = 0; Shape != 5; ++Shape)
    for (std::uint64_t Seed = Base; Seed != Base + 24; ++Seed) {
      runRandomSession(Shape, Seed, 12, /*AllowUniverse=*/true);
      ASSERT_FALSE(::testing::Test::HasFailure())
          << "divergence in shape " << Shape << " seed " << Seed;
    }
}

TEST(IncrementalEquivalence, LongEffectOnlySequencesStayIncremental) {
  // With only tier-1/2 deltas enabled the session must never fall back to
  // a full rebuild, across a long run.
  const std::uint64_t Base = testseed::baseSeed(1);
  for (unsigned Shape = 0; Shape != 5; ++Shape) {
    AnalysisSession S(makeShape(Shape, Base + 41));
    synth::EditGenConfig Cfg;
    Cfg.Seed = Base * 1234 + Shape;
    Cfg.AllowUniverse = false;
    synth::EditGen Gen(Cfg);
    for (unsigned I = 0; I != 40; ++I) {
      std::optional<Edit> E = Gen.next(S.program());
      ASSERT_TRUE(E.has_value());
      applyEdit(S, *E);
      (void)S.gmod(S.program().main());
    }
    EXPECT_EQ(S.stats().FullRebuilds, 0u) << "shape " << Shape;
    expectEquivalent(S, "long run shape " + std::to_string(Shape));
  }
}

} // namespace

IPSE_SEEDED_TEST_MAIN()
