//===- tests/bench_diff_test.cpp - Perf-regression gate tests -----------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Drives the built ipse-bench-diff binary as a subprocess over synthetic
// bench JSONL: seeding a fresh baseline, a clean re-run, a synthetic 2x
// regression (exit 1), --warn-only and --threshold-scale suppression, the
// later-input-overrides-earlier fold order, and the canonical BENCH file's
// shape (sorted, one key per line, flat-JSON parseable).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using ipse::parseJsonObject;

namespace {

/// Runs a command, captures stdout+stderr, returns the exit code.
int run(const std::string &CommandLine, std::string &Output) {
  Output.clear();
  FILE *Pipe = popen((CommandLine + " 2>&1").c_str(), "r");
  if (!Pipe)
    return -1;
  std::array<char, 4096> Buf;
  std::size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Output.append(Buf.data(), N);
  int Status = pclose(Pipe);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

std::string tool() { return std::string(IPSE_BENCH_DIFF_PATH); }

void writeFile(const fs::path &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::trunc);
  ASSERT_TRUE(Out.good()) << Path;
  Out << Text;
}

std::string slurp(const fs::path &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// A scratch directory with one seed round of every bench schema.
struct BenchDir {
  fs::path Root;

  explicit BenchDir(const char *Name) {
    Root = fs::path(testing::TempDir()) / Name;
    fs::remove_all(Root);
    fs::create_directories(Root / "seed");
    writeFile(Root / "seed" / "incremental.jsonl",
              R"({"shape":"small","mix":"effect-add","delta_us_per_edit":10.0})"
              "\n"
              R"({"shape":"small","mix":"call-churn","delta_us_per_edit":20.0})"
              "\n");
    writeFile(Root / "seed" / "service.jsonl",
              R"({"shape":"tiny","workers":2,"qps":50000.0})"
              "\n");
    writeFile(Root / "seed" / "observe.jsonl",
              R"({"kind":"overhead","engine":"sequential","shape":"s","ratio":1.01})"
              "\n"
              R"({"kind":"phase","engine":"sequential","shape":"s","phase":"gmod","wall_ns":1000000,"bv_ops":5000})"
              "\n");
    writeFile(Root / "seed" / "parallel.jsonl",
              R"({"shape":"s","mode":"k4","threads":4,"wall_ms":8.5})"
              "\n"
              R"({"shape":"s","mode":"summary","speedup_k4":1.02})"
              "\n");
    // Files outside the known schemas are skipped, not fatal.
    writeFile(Root / "seed" / "mystery.jsonl", R"({"x":1})"
                                               "\n");
  }
  ~BenchDir() {
    std::error_code Ec;
    fs::remove_all(Root, Ec);
  }

  std::string seed() const { return (Root / "seed").string(); }
  std::string baseline() const { return (Root / "BENCH.json").string(); }
};

TEST(BenchDiff, NoArgsShowsUsage) {
  std::string Out;
  EXPECT_EQ(run(tool(), Out), 2);
  EXPECT_NE(Out.find("usage:"), std::string::npos) << Out;
}

TEST(BenchDiff, MissingInputFails) {
  std::string Out;
  EXPECT_EQ(run(tool() + " --in /nonexistent-bench-dir", Out), 2);
}

TEST(BenchDiff, SeedsABaselineAndRerunsClean) {
  BenchDir Dir("ipse_bench_diff_seed");
  std::string Out;

  // First run: no baseline yet; folds and writes one, exit 0.
  ASSERT_EQ(run(tool() + " --in " + Dir.seed() + " --baseline " +
                    Dir.baseline() + " --out " + Dir.baseline(),
                Out),
            0)
      << Out;
  EXPECT_NE(Out.find("writing a fresh one"), std::string::npos) << Out;

  // The canonical file: flat JSON, sorted, one key per line, schema tag.
  std::string Text = slurp(Dir.baseline());
  std::string Err;
  auto Obj = parseJsonObject(Text, Err);
  ASSERT_TRUE(Obj.has_value()) << Err << "\n" << Text;
  EXPECT_EQ(Obj->getString("schema"), "ipse-bench-v1");
  EXPECT_EQ(Obj->getDouble("incremental/small/effect-add/delta_us_per_edit"),
            10.0);
  EXPECT_EQ(Obj->getDouble("incremental/small/call-churn/delta_us_per_edit"),
            20.0);
  EXPECT_EQ(Obj->getDouble("service/tiny/w2/qps"), 50000.0);
  EXPECT_EQ(Obj->getDouble("parallel/s/k4/wall_ms"), 8.5);
  EXPECT_EQ(Obj->getDouble("parallel/s/summary/speedup_k4"), 1.02);
  EXPECT_EQ(Obj->getDouble("observe/sequential/s/gmod/wall_ns"), 1000000.0);
  EXPECT_EQ(Obj->getDouble("observe/sequential/s/gmod/bv_ops"), 5000.0);
  // The overhead row carries no gateable identity and must not fold.
  EXPECT_EQ(Text.find("overhead"), std::string::npos) << Text;
  {
    std::istringstream Lines(Text);
    std::string Line, PrevKey;
    while (std::getline(Lines, Line)) {
      std::size_t Q1 = Line.find('"');
      if (Q1 == std::string::npos)
        continue;
      std::string Key = Line.substr(Q1 + 1, Line.find('"', Q1 + 1) - Q1 - 1);
      if (Key == "schema") // the schema tag is always the final line
        continue;
      EXPECT_LT(PrevKey, Key) << "keys must sort: " << Text;
      PrevKey = Key;
    }
  }

  // Second run against the fold it just wrote: everything stable, exit 0.
  ASSERT_EQ(run(tool() + " --in " + Dir.seed() + " --baseline " +
                    Dir.baseline() + " --out " + Dir.baseline(),
                Out),
            0)
      << Out;
  EXPECT_NE(Out.find("0 regression(s)"), std::string::npos) << Out;
}

TEST(BenchDiff, FailsOnSyntheticRegression) {
  BenchDir Dir("ipse_bench_diff_regress");
  std::string Out;
  ASSERT_EQ(run(tool() + " --in " + Dir.seed() + " --baseline " +
                    Dir.baseline() + " --out " + Dir.baseline(),
                Out),
            0)
      << Out;

  // A fresh run where delta cost jumps 2.5x, qps halves-and-more, and the
  // deterministic bv_ops count creeps 4% — each past its gate.
  fs::path Fresh = Dir.Root / "fresh";
  fs::create_directories(Fresh);
  writeFile(Fresh / "incremental.jsonl",
            R"({"shape":"small","mix":"effect-add","delta_us_per_edit":25.0})"
            "\n");
  writeFile(Fresh / "service.jsonl",
            R"({"shape":"tiny","workers":2,"qps":20000.0})"
            "\n");
  writeFile(Fresh / "observe.jsonl",
            R"({"kind":"phase","engine":"sequential","shape":"s","phase":"gmod","wall_ns":1000000,"bv_ops":5200})"
            "\n");

  // Seed first, fresh last: the fresh rows override key-wise, so the
  // regressions are visible even though the seed rows are also folded.
  std::string Cmd = tool() + " --in " + Dir.seed() + " --in " +
                    Fresh.string() + " --baseline " + Dir.baseline();
  EXPECT_EQ(run(Cmd, Out), 1) << Out;
  EXPECT_NE(Out.find("REGRESSION: incremental/small/effect-add"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("REGRESSION: service/tiny/w2/qps"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("REGRESSION: observe/sequential/s/gmod/bv_ops"),
            std::string::npos)
      << Out;
  // Untouched metrics stay quiet.
  EXPECT_EQ(Out.find("REGRESSION: parallel"), std::string::npos) << Out;

  // --warn-only reports but exits 0.
  EXPECT_EQ(run(Cmd + " --warn-only", Out), 0) << Out;
  EXPECT_NE(Out.find("--warn-only"), std::string::npos) << Out;

  // A big enough --threshold-scale absorbs the wall-clock regressions;
  // even the tight bv_ops gate opens at 10x (4% < 2% * 10).
  EXPECT_EQ(run(Cmd + " --threshold-scale 10", Out), 0) << Out;
}

TEST(BenchDiff, HardGateFailsEvenWarnOnly) {
  // speedup_k4 below the absolute floor trips the hard gate — with no
  // baseline at all, and --warn-only / --threshold-scale must not open it.
  BenchDir Dir("ipse_bench_diff_hard");
  std::string Out;
  fs::path Fresh = Dir.Root / "fresh";
  fs::create_directories(Fresh);
  writeFile(Fresh / "parallel.jsonl",
            R"({"shape":"s","mode":"summary","speedup_k4":0.5})"
            "\n");
  std::string Cmd = tool() + " --in " + Fresh.string();
  EXPECT_EQ(run(Cmd, Out), 1) << Out;
  EXPECT_NE(Out.find("HARD GATE: parallel/s/summary/speedup_k4"),
            std::string::npos)
      << Out;
  EXPECT_EQ(run(Cmd + " --warn-only", Out), 1) << Out;
  EXPECT_EQ(run(Cmd + " --warn-only --threshold-scale 100", Out), 1) << Out;

  // At the seed's healthy value the gate stays quiet.
  writeFile(Fresh / "parallel.jsonl",
            R"({"shape":"s","mode":"summary","speedup_k4":1.02})"
            "\n");
  EXPECT_EQ(run(Cmd, Out), 0) << Out;
  EXPECT_EQ(Out.find("HARD GATE"), std::string::npos) << Out;
}

TEST(BenchDiff, LaterInputsOverrideAndNewKeysDontFail) {
  BenchDir Dir("ipse_bench_diff_fold");
  std::string Out;
  ASSERT_EQ(run(tool() + " --in " + Dir.seed() + " --baseline " +
                    Dir.baseline() + " --out " + Dir.baseline(),
                Out),
            0)
      << Out;

  // Fresh file with one improved row and one brand-new key; last row of a
  // file wins within it.
  fs::path Fresh = Dir.Root / "fresh";
  fs::create_directories(Fresh);
  writeFile(Fresh / "incremental.jsonl",
            R"({"shape":"small","mix":"effect-add","delta_us_per_edit":99.0})"
            "\n"
            R"({"shape":"small","mix":"effect-add","delta_us_per_edit":7.0})"
            "\n"
            R"({"shape":"huge","mix":"effect-add","delta_us_per_edit":3.0})"
            "\n");

  fs::path NewOut = Dir.Root / "BENCH.next.json";
  ASSERT_EQ(run(tool() + " --in " + Dir.seed() + " --in " + Fresh.string() +
                    " --baseline " + Dir.baseline() + " --out " +
                    NewOut.string(),
                Out),
            0)
      << Out;
  EXPECT_NE(Out.find("new:  incremental/huge/effect-add/delta_us_per_edit"),
            std::string::npos)
      << Out;

  std::string Err;
  auto Obj = parseJsonObject(slurp(NewOut), Err);
  ASSERT_TRUE(Obj.has_value()) << Err;
  // Fresh overrode seed (10 -> 7), and within the fresh file the last row
  // won (99 then 7).
  EXPECT_EQ(Obj->getDouble("incremental/small/effect-add/delta_us_per_edit"),
            7.0);
  EXPECT_EQ(Obj->getDouble("incremental/huge/effect-add/delta_us_per_edit"),
            3.0);
  // Seed-only keys survive the fold.
  EXPECT_EQ(Obj->getDouble("incremental/small/call-churn/delta_us_per_edit"),
            20.0);
}

TEST(BenchDiff, RejectsMalformedRows) {
  BenchDir Dir("ipse_bench_diff_bad");
  writeFile(Dir.Root / "seed" / "incremental.jsonl", "{not json\n");
  std::string Out;
  EXPECT_EQ(run(tool() + " --in " + Dir.seed(), Out), 2);
  EXPECT_NE(Out.find("incremental.jsonl:1"), std::string::npos) << Out;
}

} // namespace
