//===- tests/frontend_fuzz_test.cpp - Frontend robustness fuzzing -------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The frontend must never crash on malformed input: it either produces a
// verified program or diagnostics.  Fuzzing strategy: start from valid
// generated sources and mutate them (delete spans, duplicate spans, swap
// characters, truncate), then compile; when compilation unexpectedly
// succeeds, the resulting program must still pass Program::verify().
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "support/Rng.h"
#include "synth/ProgramGen.h"
#include "synth/SourceGen.h"

#include <gtest/gtest.h>

#include <string>

using namespace ipse;

namespace {

std::string baseSource(std::uint64_t Seed) {
  synth::ProgramGenConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.NumProcs = 8;
  Cfg.NumGlobals = 3;
  Cfg.MaxNestDepth = 2;
  return synth::emitMiniProc(synth::generateProgram(Cfg));
}

void compileMustNotCrash(const std::string &Source) {
  frontend::CompileResult R = frontend::compileMiniProc(Source);
  if (R.succeeded()) {
    std::string Error;
    EXPECT_TRUE(R.Program->verify(Error)) << Error;
  } else {
    EXPECT_TRUE(R.Diags.hasErrors());
  }
}

class FrontendFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrontendFuzz, DeletedSpans) {
  Rng R(GetParam());
  std::string Base = baseSource(GetParam());
  for (int I = 0; I != 40; ++I) {
    std::string S = Base;
    std::size_t Pos = R.nextBelow(S.size());
    std::size_t Len = 1 + R.nextBelow(20);
    S.erase(Pos, Len);
    compileMustNotCrash(S);
  }
}

TEST_P(FrontendFuzz, DuplicatedSpans) {
  Rng R(GetParam() * 31 + 7);
  std::string Base = baseSource(GetParam());
  for (int I = 0; I != 40; ++I) {
    std::string S = Base;
    std::size_t Pos = R.nextBelow(S.size());
    std::size_t Len = 1 + R.nextBelow(15);
    Len = std::min(Len, S.size() - Pos);
    S.insert(Pos, S.substr(Pos, Len));
    compileMustNotCrash(S);
  }
}

TEST_P(FrontendFuzz, SwappedCharacters) {
  Rng R(GetParam() * 131 + 3);
  std::string Base = baseSource(GetParam());
  for (int I = 0; I != 40; ++I) {
    std::string S = Base;
    for (int K = 0; K != 4; ++K) {
      std::size_t A = R.nextBelow(S.size());
      std::size_t B = R.nextBelow(S.size());
      std::swap(S[A], S[B]);
    }
    compileMustNotCrash(S);
  }
}

TEST_P(FrontendFuzz, Truncations) {
  std::string Base = baseSource(GetParam());
  for (std::size_t Cut = 0; Cut < Base.size(); Cut += 7)
    compileMustNotCrash(Base.substr(0, Cut));
}

TEST_P(FrontendFuzz, RandomBytes) {
  Rng R(GetParam() * 977 + 11);
  for (int I = 0; I != 20; ++I) {
    std::string S;
    std::size_t Len = R.nextBelow(300);
    for (std::size_t K = 0; K != Len; ++K)
      S.push_back(static_cast<char>(32 + R.nextBelow(95)));
    compileMustNotCrash(S);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FrontendFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

} // namespace
