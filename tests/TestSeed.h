//===- tests/TestSeed.h - Reproducible seeds for randomized suites -*- C++ -*-===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed plumbing for the randomized suites (EditGen sequences, property
/// batteries, fuzzers).  Every such suite derives its generator seeds from
/// testseed::baseSeed(), which resolves, in priority order:
///
///   1. `--seed=N` on the test binary's command line,
///   2. the `IPSE_SEED` environment variable,
///   3. the suite's compiled-in default.
///
/// A red run prints the resolved base seed in a `[  SEED  ]` trailer so the
/// failure is reproducible with `./the_test --seed=N` instead of lost.
/// Suites opt in by calling IPSE_SEEDED_TEST_MAIN() instead of linking the
/// stock gtest main (defining main in the test object preempts
/// gtest_main's).
///
//===----------------------------------------------------------------------===//

#ifndef IPSE_TESTS_TESTSEED_H
#define IPSE_TESTS_TESTSEED_H

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

namespace ipse {
namespace testseed {

namespace detail {

struct SeedState {
  std::optional<std::uint64_t> Override; // --seed / IPSE_SEED
  std::optional<std::uint64_t> Resolved; // what baseSeed() handed out
};

inline SeedState &state() {
  static SeedState S;
  return S;
}

inline std::optional<std::uint64_t> parseSeed(const char *Text) {
  if (!Text || !*Text)
    return std::nullopt;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (!End || *End != '\0')
    return std::nullopt;
  return static_cast<std::uint64_t>(V);
}

/// Prints the base seed after any failed test, once per test.
class SeedReporter : public ::testing::EmptyTestEventListener {
  void OnTestEnd(const ::testing::TestInfo &Info) override {
    if (!Info.result() || !Info.result()->Failed())
      return;
    if (!state().Resolved)
      return; // The failing test never drew randomness.
    std::cerr << "[  SEED  ] base seed " << *state().Resolved
              << " — reproduce with --seed=" << *state().Resolved
              << " (or IPSE_SEED=" << *state().Resolved << ")\n";
  }
};

} // namespace detail

/// The suite's base seed: command-line/environment override, else
/// \p Default.  Also records the value so a failure can print it.
inline std::uint64_t baseSeed(std::uint64_t Default = 1) {
  detail::SeedState &S = detail::state();
  std::uint64_t Value = S.Override ? *S.Override : Default;
  S.Resolved = Value;
  return Value;
}

/// Parses `--seed=N` / `--seed N` out of argv (consuming them) and the
/// IPSE_SEED environment variable, and installs the failure reporter.
/// Call after InitGoogleTest.
inline void initSeed(int &Argc, char **Argv) {
  detail::SeedState &S = detail::state();
  if (std::optional<std::uint64_t> V =
          detail::parseSeed(std::getenv("IPSE_SEED")))
    S.Override = V;
  int Out = 1;
  for (int I = 1; I < Argc; ++I) {
    std::optional<std::uint64_t> V;
    if (std::strncmp(Argv[I], "--seed=", 7) == 0)
      V = detail::parseSeed(Argv[I] + 7);
    else if (std::strcmp(Argv[I], "--seed") == 0 && I + 1 < Argc)
      V = detail::parseSeed(Argv[++I]);
    else {
      Argv[Out++] = Argv[I];
      continue;
    }
    if (V)
      S.Override = V; // Command line beats the environment.
  }
  Argc = Out;
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new detail::SeedReporter);
}

} // namespace testseed
} // namespace ipse

/// Drop-in main for seeded suites.
#define IPSE_SEEDED_TEST_MAIN()                                                \
  int main(int argc, char **argv) {                                            \
    ::testing::InitGoogleTest(&argc, argv);                                    \
    ::ipse::testseed::initSeed(argc, argv);                                    \
    return RUN_ALL_TESTS();                                                    \
  }

#endif // IPSE_TESTS_TESTSEED_H
