//===- tests/demand_test.cpp - DemandSession tests ----------------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Tests for the demand-driven engine: handcrafted scenarios asserting both
// the answers and the *region economics* (DemandStats counters — how many
// procedures each query actually solved, whether memo hits hit, whether
// invalidation un-solved the right cone), plus a randomized harness that
// interleaves EditGen edit sequences with random partial query subsets and
// checks every answer bit-for-bit against a fresh batch analyzer.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "demand/DemandSession.h"
#include "incremental/AnalysisSession.h"
#include "incremental/Edit.h"
#include "ir/ProgramBuilder.h"
#include "synth/EditGen.h"
#include "synth/ProgramGen.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <random>

using namespace ipse;
using namespace ipse::demand;
using analysis::AnalyzerOptions;
using analysis::EffectKind;
using analysis::SideEffectAnalyzer;
using incremental::Edit;
using ir::ProcId;
using ir::Program;
using ir::ProgramBuilder;
using ir::StmtId;
using ir::VarId;

namespace {

ir::AliasInfo someAliases(const Program &P) {
  ir::AliasInfo Aliases(P);
  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    const ir::Procedure &Pr = P.proc(ProcId(I));
    if (Pr.Formals.size() >= 2)
      Aliases.addPair(ProcId(I), Pr.Formals[0], Pr.Formals[1]);
  }
  return Aliases;
}

/// Full query sweep vs a fresh batch analyzer (forces complete coverage).
void expectEquivalent(DemandSession &S, const std::string &Context) {
  const Program &P = S.program();
  SideEffectAnalyzer Mod(P);
  AnalyzerOptions UseOpts;
  UseOpts.Kind = EffectKind::Use;
  SideEffectAnalyzer Use(P, UseOpts);
  ir::AliasInfo Aliases = someAliases(P);

  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    ProcId Proc(I);
    EXPECT_EQ(S.gmod(Proc), Mod.gmod(Proc))
        << Context << ": GMOD(" << P.name(Proc) << ")";
    EXPECT_EQ(S.guse(Proc), Use.gmod(Proc))
        << Context << ": GUSE(" << P.name(Proc) << ")";
    EXPECT_EQ(S.imodPlus(Proc, EffectKind::Mod), Mod.imodPlus(Proc))
        << Context << ": IMOD+(" << P.name(Proc) << ")";
    EXPECT_EQ(S.imod(Proc, EffectKind::Mod), Mod.imod(Proc))
        << Context << ": IMOD(" << P.name(Proc) << ")";
    for (VarId F : P.proc(Proc).Formals) {
      EXPECT_EQ(S.rmodContains(F), Mod.rmodContains(F))
          << Context << ": RMOD bit of " << P.name(F);
      EXPECT_EQ(S.rmodContains(F, EffectKind::Use), Use.rmodContains(F))
          << Context << ": RUSE bit of " << P.name(F);
    }
  }
  for (std::uint32_t I = 0; I != P.numStmts(); ++I) {
    StmtId St(I);
    EXPECT_EQ(S.dmod(St), Mod.dmod(St)) << Context << ": DMOD(s" << I << ")";
    EXPECT_EQ(S.duse(St), Use.dmod(St)) << Context << ": DUSE(s" << I << ")";
    EXPECT_EQ(S.mod(St, Aliases), Mod.mod(St, Aliases))
        << Context << ": MOD(s" << I << ")";
    EXPECT_EQ(S.use(St, Aliases), Use.mod(St, Aliases))
        << Context << ": USE(s" << I << ")";
  }
  for (std::uint32_t I = 0; I != P.numCallSites(); ++I) {
    ir::CallSiteId C(I);
    EXPECT_EQ(S.dmod(C), Mod.dmod(C)) << Context << ": DMOD(c" << I << ")";
  }
}

/// main(g, h); p(a){ mod a }; q(){ mod g; call p(h) }; main calls q.
struct SimpleProgram {
  ProcId Main, PP, QP;
  VarId G, H, A;
  StmtId PS, QS;
  Program P;

  SimpleProgram() {
    ProgramBuilder B;
    Main = B.createMain("main");
    G = B.addGlobal("g");
    H = B.addGlobal("h");
    PP = B.createProc("p", Main);
    A = B.addFormal(PP, "a");
    PS = B.addStmt(PP);
    B.addMod(PS, A);
    QP = B.createProc("q", Main);
    QS = B.addStmt(QP);
    B.addMod(QS, G);
    B.addCall(QS, PP, std::vector<VarId>{H});
    B.addCallStmt(Main, QP, {});
    P = B.finish();
  }
};

//===----------------------------------------------------------------------===//
// Handcrafted scenarios.
//===----------------------------------------------------------------------===//

TEST(DemandSession, MatchesBatchInitially) {
  SimpleProgram SP;
  DemandSession S(std::move(SP.P));
  expectEquivalent(S, "initial");
}

TEST(DemandSession, SingleQuerySolvesOnlyItsRegion) {
  // Chain main -> q -> p, plus an island r (called by main) the first
  // queries never depend on.
  SimpleProgram SP;
  ProgramBuilder B; // Rebuild with an extra island proc.
  Program P = std::move(SP.P);
  DemandSession S(std::move(P));

  // p calls nothing: its region is {p} alone.
  const Program &Prog = S.program();
  SideEffectAnalyzer Batch(Prog);
  EXPECT_EQ(S.gmod(SP.PP), Batch.gmod(SP.PP));
  EXPECT_EQ(S.stats().RegionSolves, 1u);
  EXPECT_EQ(S.stats().RegionProcs, 1u);
  EXPECT_TRUE(S.covered(SP.PP, EffectKind::Mod));
  EXPECT_FALSE(S.covered(SP.QP, EffectKind::Mod));
  EXPECT_FALSE(S.covered(SP.Main, EffectKind::Mod));
  EXPECT_EQ(S.coveredCount(EffectKind::Mod), 1u);

  // q depends on p, which is memoized: the second region is {q} alone,
  // with p's planes folded in as a frontier summary.
  EXPECT_EQ(S.gmod(SP.QP), Batch.gmod(SP.QP));
  EXPECT_EQ(S.stats().RegionSolves, 2u);
  EXPECT_EQ(S.stats().RegionProcs, 2u);
  EXPECT_GE(S.stats().MemoHits, 0u);

  EXPECT_EQ(S.gmod(SP.Main), Batch.gmod(SP.Main));
  EXPECT_EQ(S.stats().RegionProcs, 3u);
  EXPECT_EQ(S.coveredCount(EffectKind::Mod), 3u);
}

TEST(DemandSession, RepeatQueriesHitMemo) {
  SimpleProgram SP;
  DemandSession S(std::move(SP.P));
  (void)S.gmod(SP.Main); // Solves {main, q, p}.
  std::uint64_t Solves = S.stats().RegionSolves;
  std::uint64_t Hits = S.stats().MemoHits;

  (void)S.gmod(SP.Main);
  (void)S.gmod(SP.QP);
  (void)S.rmodContains(SP.A);
  EXPECT_EQ(S.stats().RegionSolves, Solves); // Nothing re-solved.
  EXPECT_EQ(S.stats().MemoHits, Hits + 3);
}

TEST(DemandSession, BindingRegionFollowsNestedCallSites) {
  // §3.3: p(f) contains a *nested* procedure n whose call site passes
  // p's formal onward to s(x){ mod x }.  s is not a callee of p, but
  // RMOD(f) depends on RMOD(x) through the β edge f -> x, so p's region
  // must include s via the β-owner edge.  If the region walk only
  // followed call edges, RMOD(f) would read a stale zero and GMOD would
  // diverge from batch.
  ProgramBuilder B;
  ProcId Main = B.createMain("main");
  VarId G = B.addGlobal("g");
  ProcId PP = B.createProc("p", Main);
  VarId F = B.addFormal(PP, "f");
  ProcId NP = B.createProc("n", PP); // Nested inside p.
  ProcId SProc = B.createProc("s", Main);
  VarId X = B.addFormal(SProc, "x");
  B.addMod(B.addStmt(SProc), X);
  B.addCall(B.addStmt(NP), SProc, std::vector<VarId>{F});
  B.addCallStmt(PP, NP, {});
  B.addCallStmt(Main, PP, std::vector<VarId>{G});
  DemandSession S(B.finish());

  SideEffectAnalyzer Batch(S.program());
  EXPECT_TRUE(Batch.rmodContains(F)); // Sanity: the β path is live.
  EXPECT_EQ(S.gmod(PP), Batch.gmod(PP));
  EXPECT_TRUE(S.rmodContains(F));
  EXPECT_TRUE(S.covered(SProc, EffectKind::Mod))
      << "region must reach s through the β-owner edge";
  EXPECT_EQ(S.gmod(Main), Batch.gmod(Main));
}

TEST(DemandSession, EffectDeltaInvalidatesDependents) {
  SimpleProgram SP;
  DemandSession S(std::move(SP.P));
  (void)S.gmod(SP.Main); // Full chain covered.

  // Dropping "mod a" flips RMOD(a) off; q and main depend on it and must
  // be un-solved, then re-answered to the new batch truth.
  EXPECT_TRUE(S.removeMod(SP.PS, SP.A));
  EXPECT_FALSE(S.rmodContains(SP.A));
  EXPECT_GE(S.stats().Invalidations, 1u);
  SideEffectAnalyzer Batch(S.program());
  EXPECT_EQ(S.gmod(SP.QP), Batch.gmod(SP.QP));
  EXPECT_FALSE(S.gmod(SP.QP).test(SP.H.index()));
  expectEquivalent(S, "after RMOD flip");
}

TEST(DemandSession, AbsorbedEffectDeltaKeepsMemo) {
  // r calls p; p mods g, so GMOD(r) already contains g.  Adding "mod g"
  // to r's own body grows IMOD+(r) inside its memoized GMOD — the
  // monotone-growth prune must keep the whole chain Solved.
  ProgramBuilder B;
  ProcId Main = B.createMain("main");
  VarId G = B.addGlobal("g");
  ProcId PP = B.createProc("p", Main);
  B.addMod(B.addStmt(PP), G);
  ProcId RP = B.createProc("r", Main);
  StmtId RS = B.addStmt(RP);
  B.addCall(RS, PP, std::vector<VarId>{});
  B.addCallStmt(Main, RP, {});
  DemandSession S(B.finish());
  (void)S.gmod(Main);
  std::uint64_t Solves = S.stats().RegionSolves;

  S.addMod(RS, G);
  EXPECT_TRUE(S.covered(RP, EffectKind::Mod)); // Flushes; r stays Solved.
  EXPECT_GE(S.stats().AbsorbedEdits, 1u);
  EXPECT_TRUE(S.gmod(RP).test(G.index()));
  EXPECT_EQ(S.stats().RegionSolves, Solves); // No region re-solved.
  expectEquivalent(S, "after absorbed addMod");

  // Removing the bit shrinks IMOD+(r): no prune applies, the cone above r
  // is un-solved, and the re-solve restores the (unchanged) answer.
  EXPECT_TRUE(S.removeMod(RS, G));
  EXPECT_FALSE(S.covered(RP, EffectKind::Mod));
  EXPECT_TRUE(S.gmod(RP).test(G.index()));
  expectEquivalent(S, "after removing the absorbed bit");
}

TEST(DemandSession, CallDeltaUnsolvesCallerChain) {
  SimpleProgram SP;
  DemandSession S(std::move(SP.P));
  (void)S.gmod(SP.Main);

  S.addCall(SP.QS, SP.PP, {ir::Actual::variable(SP.G)});
  EXPECT_FALSE(S.covered(SP.QP, EffectKind::Mod));
  EXPECT_FALSE(S.covered(SP.Main, EffectKind::Mod));
  EXPECT_TRUE(S.covered(SP.PP, EffectKind::Mod)); // Callee unaffected.
  EXPECT_TRUE(S.gmod(SP.QP).test(SP.G.index()));
  expectEquivalent(S, "after addCall");

  S.removeCall(ir::CallSiteId(0));
  expectEquivalent(S, "after removeCall");
}

TEST(DemandSession, UniverseResetCostsNoSolve) {
  SimpleProgram SP;
  DemandSession S(std::move(SP.P));
  (void)S.gmod(SP.Main);

  VarId NewG = S.addGlobal("brand_new");
  S.addMod(SP.QS, NewG);
  // The reset drops all memo but performs no fixed-point work; the next
  // single-proc query re-solves only its own region.
  EXPECT_EQ(S.gmod(SP.PP), SideEffectAnalyzer(S.program()).gmod(SP.PP));
  EXPECT_EQ(S.stats().FullResets, 1u);
  EXPECT_EQ(S.coveredCount(EffectKind::Mod), 1u);
  expectEquivalent(S, "after addGlobal");
}

TEST(DemandSession, WarmRestoreStartsFullyCovered) {
  SimpleProgram SP;
  Program Copy = SP.P;
  DemandSession Cold(std::move(SP.P));
  Cold.ensureSolvedAll();
  incremental::SessionPlanes Planes = Cold.exportPlanes();

  DemandSession Warm(std::move(Copy), DemandOptions(), std::move(Planes));
  EXPECT_EQ(Warm.coveredCount(EffectKind::Mod), Warm.program().numProcs());
  (void)Warm.gmod(SP.Main);
  EXPECT_EQ(Warm.stats().RegionSolves, 0u); // Answered from restored memo.
  expectEquivalent(Warm, "warm restore");

  // Replayed edits invalidate through the restored planes; the first query
  // after them solves only the dirty region.
  EXPECT_TRUE(Warm.removeMod(SP.PS, SP.A));
  EXPECT_FALSE(Warm.rmodContains(SP.A));
  EXPECT_GE(Warm.stats().RegionSolves, 1u);
  expectEquivalent(Warm, "warm restore + edit");
}

TEST(DemandSession, AcceptsIncrementalSessionPlanes) {
  // The incremental session's exported planes install as demand memo —
  // the tenant fault-in path (snapshot written by either engine).
  SimpleProgram SP;
  Program Copy = SP.P;
  incremental::AnalysisSession Batch(std::move(SP.P));
  (void)Batch.gmod(SP.Main);
  DemandSession S(std::move(Copy), DemandOptions(), Batch.exportPlanes());
  EXPECT_EQ(S.coveredCount(EffectKind::Mod), S.program().numProcs());
  (void)S.gmod(SP.QP);
  EXPECT_EQ(S.stats().RegionSolves, 0u);
  expectEquivalent(S, "planes from AnalysisSession");
}

TEST(DemandSession, ModOnlySessionSkipsUse) {
  SimpleProgram SP;
  ProcId QP = SP.QP;
  StmtId QS = SP.QS;
  VarId H = SP.H;
  DemandOptions Opts;
  Opts.TrackUse = false;
  DemandSession S(std::move(SP.P), Opts);

  S.addUse(QS, H); // Applied to the program; no USE pipeline exists.
  S.addMod(QS, H);
  EXPECT_TRUE(S.gmod(QP).test(H.index()));
  SideEffectAnalyzer Mod(S.program());
  EXPECT_EQ(S.gmod(QP), Mod.gmod(QP));
}

TEST(DemandSession, DModQueriesSolveCalleesOnly) {
  SimpleProgram SP;
  DemandSession S(std::move(SP.P));
  SideEffectAnalyzer Batch(S.program());
  // DMOD of q's statement needs p's GMOD but not main's.
  EXPECT_EQ(S.dmod(SP.QS), Batch.dmod(SP.QS));
  EXPECT_TRUE(S.covered(SP.PP, EffectKind::Mod));
  EXPECT_FALSE(S.covered(SP.Main, EffectKind::Mod));
}

//===----------------------------------------------------------------------===//
// Randomized partial-query harness.
//===----------------------------------------------------------------------===//

Program makeShape(unsigned Shape, std::uint64_t Seed) {
  switch (Shape % 5) {
  case 0: {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 10;
    Cfg.NumGlobals = 6;
    return synth::generateProgram(Cfg);
  }
  case 1: {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 12;
    Cfg.NumGlobals = 4;
    Cfg.MaxNestDepth = 3;
    return synth::generateProgram(Cfg);
  }
  case 2:
    return synth::makeCycleProgram(8, 2);
  case 3:
    return synth::makeLayeredProgram(3, 4, 2, 2, 4, Seed);
  default:
    return synth::makeFortranStyleProgram(12, 8, 3, Seed);
  }
}

/// Compares a random subset of procedures against fresh batch analyzers —
/// the demand-specific stress: coverage stays partial, later queries mix
/// memoized frontiers with fresh regions.
void expectSubsetEquivalent(DemandSession &S, std::mt19937_64 &Rng,
                            const std::string &Context) {
  const Program &P = S.program();
  SideEffectAnalyzer Mod(P);
  AnalyzerOptions UseOpts;
  UseOpts.Kind = EffectKind::Use;
  SideEffectAnalyzer Use(P, UseOpts);

  std::uniform_int_distribution<std::uint32_t> PickProc(0, P.numProcs() - 1);
  unsigned Count = 1 + Rng() % 3;
  for (unsigned I = 0; I != Count; ++I) {
    ProcId Proc(PickProc(Rng));
    EXPECT_EQ(S.gmod(Proc), Mod.gmod(Proc))
        << Context << ": GMOD(" << P.name(Proc) << ")";
    EXPECT_EQ(S.guse(Proc), Use.gmod(Proc))
        << Context << ": GUSE(" << P.name(Proc) << ")";
    for (VarId F : P.proc(Proc).Formals)
      EXPECT_EQ(S.rmodContains(F), Mod.rmodContains(F))
          << Context << ": RMOD bit of " << P.name(F);
  }
  if (P.numStmts() != 0) {
    StmtId St(static_cast<std::uint32_t>(Rng() % P.numStmts()));
    EXPECT_EQ(S.dmod(St), Mod.dmod(St))
        << Context << ": DMOD(s" << St.index() << ")";
  }
}

void runRandomSession(unsigned Shape, std::uint64_t Seed,
                      unsigned EditsPerRun) {
  DemandSession S(makeShape(Shape, Seed));
  synth::EditGenConfig Cfg;
  Cfg.Seed = Seed * 977 + Shape;
  Cfg.AllowUniverse = true;
  synth::EditGen Gen(Cfg);
  std::mt19937_64 Rng(Seed * 7919 + Shape);

  std::string Base =
      "shape " + std::to_string(Shape) + " seed " + std::to_string(Seed);
  expectSubsetEquivalent(S, Rng, Base + " initial");
  for (unsigned I = 0; I != EditsPerRun; ++I) {
    std::optional<Edit> E = Gen.next(S.program());
    if (!E)
      break;
    std::string Context = Base + " edit " + std::to_string(I) + " (" +
                          toString(S.program(), *E) + ")";
    applyEdit(S, *E);
    std::string VerifyError;
    ASSERT_TRUE(S.program().verify(VerifyError))
        << Context << ": " << VerifyError;
    expectSubsetEquivalent(S, Rng, Context);
    if (::testing::Test::HasFailure())
      return;
  }
  expectEquivalent(S, Base + " final sweep");
}

TEST(DemandEquivalence, RandomEditAndQuerySequences) {
  std::uint64_t Base = testseed::baseSeed(1);
  for (unsigned Shape = 0; Shape != 5; ++Shape)
    for (std::uint64_t Seed = Base; Seed != Base + 16; ++Seed) {
      runRandomSession(Shape, Seed, 12);
      ASSERT_FALSE(::testing::Test::HasFailure())
          << "divergence in shape " << Shape << " seed " << Seed;
    }
}

TEST(DemandEquivalence, WarmRestoreThenEditsMatchesBatch) {
  // The tenant fault-in shape: solve all, export, restore warm, replay a
  // short edit tail, and answer partial queries — regions must stay small
  // and every answer byte-identical.
  std::uint64_t Base = testseed::baseSeed(1);
  for (unsigned Shape = 0; Shape != 5; ++Shape) {
    Program P = makeShape(Shape, Base + Shape);
    Program Copy = P;
    DemandSession Cold(std::move(P));
    Cold.ensureSolvedAll();
    incremental::SessionPlanes Planes = Cold.exportPlanes();

    DemandSession S(std::move(Copy), DemandOptions(), std::move(Planes));
    synth::EditGenConfig Cfg;
    Cfg.Seed = Base + 31 * Shape;
    Cfg.AllowUniverse = false; // Keep the memo warm (no full reset).
    synth::EditGen Gen(Cfg);
    std::mt19937_64 Rng(Base + 57 * Shape);
    for (unsigned I = 0; I != 8; ++I) {
      std::optional<Edit> E = Gen.next(S.program());
      ASSERT_TRUE(E.has_value());
      applyEdit(S, *E);
      expectSubsetEquivalent(S, Rng,
                             "warm shape " + std::to_string(Shape) +
                                 " edit " + std::to_string(I));
      if (::testing::Test::HasFailure())
        return;
    }
    expectEquivalent(S, "warm shape " + std::to_string(Shape) + " final");
  }
}

} // namespace

IPSE_SEEDED_TEST_MAIN()
