//===- tests/flight_recorder_test.cpp - Always-on event-ring tests ------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The flight recorder end to end: ring wrap (only the last Capacity
// events survive), the cross-thread drain/merge (every thread's ring is
// visible, time-sorted, tid-attributed — TSan runs this file), the
// enable/disable switch, and renderChromeTrace()'s output contract: a
// single well-formed JSON document in both the multi-line (file) and
// single-line (wire) forms, with matched spans as complete "X" slices.
// Under -DIPSE_OBSERVE=OFF everything degrades to empty results; the
// same assertions run against the stub surface.
//
//===----------------------------------------------------------------------===//

#include "observe/FlightRecorder.h"
#include "observe/Trace.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace ipse;
using namespace ipse::observe;

namespace {

/// Drained events carrying exactly \p Name (pointer identity is not
/// guaranteed across translation units; compare contents).
std::vector<flight::Event> eventsNamed(const char *Name) {
  std::vector<flight::Event> Out;
  for (const flight::Event &E : flight::drain())
    if (E.Name && std::strcmp(E.Name, Name) == 0)
      Out.push_back(E);
  return Out;
}

#ifndef IPSE_OBSERVE_OFF

TEST(FlightRecorder, RecordedEventsDrainWithPayload) {
  flight::record(flight::EventKind::QueueDepth, "frt.basic", 17);
  flight::record(flight::EventKind::WalFsync, "frt.basic", 250);
  std::vector<flight::Event> Got = eventsNamed("frt.basic");
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0].Kind, flight::EventKind::QueueDepth);
  EXPECT_EQ(Got[0].Value, 17u);
  EXPECT_EQ(Got[1].Kind, flight::EventKind::WalFsync);
  EXPECT_EQ(Got[1].Value, 250u);
  EXPECT_EQ(Got[0].Tid, Got[1].Tid);
  EXPECT_LE(Got[0].TimeNs, Got[1].TimeNs);
}

TEST(FlightRecorder, RingWrapKeepsOnlyTheNewestEvents) {
  const std::size_t Cap = flight::ringCapacity();
  ASSERT_GT(Cap, 0u);
  // Overfill this thread's ring by half a capacity; the drain must see
  // at most Cap events and they must be the *newest* ones.
  const std::size_t Total = Cap + Cap / 2;
  for (std::size_t I = 0; I != Total; ++I)
    flight::record(flight::EventKind::Counter, "frt.wrap", I);
  std::vector<flight::Event> Got = eventsNamed("frt.wrap");
  ASSERT_LE(Got.size(), Cap);
  // Everything old enough to have been overwritten is gone.
  for (const flight::Event &E : Got)
    EXPECT_GE(E.Value, Total - Cap) << "stale slot survived the wrap";
  // The very last event always survives (nothing wrote after it).
  ASSERT_FALSE(Got.empty());
  EXPECT_EQ(Got.back().Value, Total - 1);
}

TEST(FlightRecorder, DrainMergesAllThreadsTimeSorted) {
  constexpr unsigned Threads = 3, PerThread = 64;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([T] {
      for (unsigned I = 0; I != PerThread; ++I)
        flight::record(flight::EventKind::Counter, "frt.merge",
                       std::uint64_t(T) * 1000 + I);
    });
  for (std::thread &Th : Pool)
    Th.join();

  std::vector<flight::Event> Got = eventsNamed("frt.merge");
  ASSERT_EQ(Got.size(), std::size_t(Threads) * PerThread);
  // Time-sorted across rings, and every thread's events attributed to a
  // distinct tid (none of them this thread's).
  std::map<std::uint32_t, unsigned> PerTid;
  std::uint64_t PrevNs = 0;
  for (const flight::Event &E : Got) {
    EXPECT_GE(E.TimeNs, PrevNs);
    PrevNs = E.TimeNs;
    ++PerTid[E.Tid];
  }
  ASSERT_EQ(PerTid.size(), std::size_t(Threads));
  for (const auto &[Tid, N] : PerTid)
    EXPECT_EQ(N, PerThread) << "tid " << Tid;
}

TEST(FlightRecorder, DisableDropsEventsEnableResumes) {
  ASSERT_TRUE(flight::enabled());
  flight::setEnabled(false);
  flight::record(flight::EventKind::Counter, "frt.gate", 1);
  EXPECT_TRUE(eventsNamed("frt.gate").empty());
  flight::setEnabled(true);
  flight::record(flight::EventKind::Counter, "frt.gate", 2);
  std::vector<flight::Event> Got = eventsNamed("frt.gate");
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0].Value, 2u);
}

TEST(FlightRecorder, SpansFeedTheRecorderWithoutASink) {
  // TraceSpan records into the flight ring even with no TraceScope
  // installed — that is the recorder's whole point.
  {
    TraceSpan Outer("frt.span_outer");
    TraceSpan Inner("frt.span_inner");
  }
  std::vector<flight::Event> Outer = eventsNamed("frt.span_outer");
  std::vector<flight::Event> Inner = eventsNamed("frt.span_inner");
  ASSERT_EQ(Outer.size(), 2u); // begin + end
  ASSERT_EQ(Inner.size(), 2u);
  EXPECT_EQ(Outer[0].Kind, flight::EventKind::SpanBegin);
  EXPECT_EQ(Outer[1].Kind, flight::EventKind::SpanEnd);
  // SpanEnd carries its own duration; the inner span nests inside the
  // outer one's wall time.
  EXPECT_LE(Inner[1].Value, Outer[1].Value);
}

TEST(FlightRecorder, ChromeTraceIsOneValidJsonDocument) {
  {
    TraceSpan Span("frt.chrome_span");
    flight::record(flight::EventKind::QueueDepth, "frt.chrome_depth", 5);
    flight::record(flight::EventKind::SnapshotPublish, "frt.chrome_pub", 9);
  }
  std::string MultiLine = flight::renderChromeTrace();
  std::string Err;
  EXPECT_TRUE(validateJsonDocument(MultiLine, Err)) << Err;
  // The matched span renders as one complete "X" slice, the queue depth
  // as a "C" counter, the publish as an instant.
  EXPECT_NE(MultiLine.find("\"name\":\"frt.chrome_span\",\"cat\":\"flight\","
                           "\"ph\":\"X\""),
            std::string::npos)
      << MultiLine;
  EXPECT_NE(MultiLine.find("\"name\":\"frt.chrome_depth\",\"cat\":\"flight\","
                           "\"ph\":\"C\""),
            std::string::npos);
  EXPECT_NE(MultiLine.find("\"name\":\"frt.chrome_pub\",\"cat\":\"flight\","
                           "\"ph\":\"i\""),
            std::string::npos);

  // The wire form is the same document on one physical line.
  std::string OneLine = flight::renderChromeTrace(/*MultiLine=*/false);
  EXPECT_TRUE(validateJsonDocument(OneLine, Err)) << Err;
  EXPECT_EQ(OneLine.find('\n'), std::string::npos);
}

TEST(FlightRecorder, StillOpenSpansRenderAsBeginEvents) {
  ManualSpan Open("frt.open_span");
  std::string Trace = flight::renderChromeTrace();
  EXPECT_NE(Trace.find("\"name\":\"frt.open_span\",\"cat\":\"flight\","
                       "\"ph\":\"B\""),
            std::string::npos)
      << Trace;
  Open.close();
  // Once closed it pairs up: the complete slice replaces the bare begin.
  std::string After = flight::renderChromeTrace();
  EXPECT_NE(After.find("\"name\":\"frt.open_span\",\"cat\":\"flight\","
                       "\"ph\":\"X\""),
            std::string::npos)
      << After;
}

#else // IPSE_OBSERVE_OFF

TEST(FlightRecorderOff, EverythingCompilesOutToEmpty) {
  flight::record(flight::EventKind::Counter, "frt.off", 1);
  EXPECT_FALSE(flight::enabled());
  EXPECT_TRUE(flight::drain().empty());
  EXPECT_TRUE(eventsNamed("frt.off").empty());
  EXPECT_EQ(flight::ringCapacity(), 0u);
  std::string Err;
  EXPECT_TRUE(validateJsonDocument(flight::renderChromeTrace(), Err)) << Err;
  EXPECT_TRUE(
      validateJsonDocument(flight::renderChromeTrace(/*MultiLine=*/false),
                           Err))
      << Err;
}

#endif // IPSE_OBSERVE_OFF

} // namespace
