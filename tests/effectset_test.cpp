//===- tests/effectset_test.cpp - EffectSet / kernel differential suite ------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential battery behind support/EffectSet and
/// support/SimdKernels: every dispatched word kernel against the scalar
/// reference, and every EffectSet representation (dense, sparse, and the
/// Auto hybrid mid-migration) against a naive std::vector<bool> model.
/// Universe sizes straddle the word boundary (63/64/65) so the vector
/// kernels' scalar tail epilogue and the clear-unused-bits invariant are
/// both on the hook, and the random mix includes empty and full sets so
/// the all-zeros / all-ones fast paths cannot hide a bug.
///
/// This suite runs under ASan/UBSan and TSan in CI and is the designated
/// killer for the kernel mutants in tools/ipse-mutate (dropped tail mask,
/// wrong sparse merge).
///
//===----------------------------------------------------------------------===//

#include "support/EffectSet.h"
#include "support/SimdKernels.h"

#include "TestSeed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

using namespace ipse;

namespace {

using Word = simd::Word;

//===----------------------------------------------------------------------===//
// Word-kernel differential: dispatched table vs scalar reference
//===----------------------------------------------------------------------===//

std::vector<Word> randomWords(std::mt19937_64 &Rng, std::size_t N,
                              int Density) {
  // Density 0 => all zeros, 3 => all ones, else random with a bias so
  // both mostly-zero and mostly-one inputs appear.
  std::vector<Word> W(N);
  for (Word &V : W) {
    if (Density == 0)
      V = 0;
    else if (Density == 3)
      V = ~Word(0);
    else if (Density == 1)
      V = Rng() & Rng() & Rng(); // sparse-ish
    else
      V = Rng() | Rng(); // dense-ish
  }
  return W;
}

// Applies every kernel of both tables to copies of the same inputs and
// insists on byte-identical destinations and identical changed flags.
void diffKernelsOnce(std::mt19937_64 &Rng, std::size_t N) {
  const simd::WordKernels &Fast = simd::kernels();
  const simd::WordKernels &Ref = simd::scalarKernels();

  const int DstD = static_cast<int>(Rng() % 4);
  const int AD = static_cast<int>(Rng() % 4);
  const int BD = static_cast<int>(Rng() % 4);
  const int KD = static_cast<int>(Rng() % 4);
  const std::vector<Word> Dst0 = randomWords(Rng, N, DstD);
  const std::vector<Word> A = randomWords(Rng, N, AD);
  const std::vector<Word> B = randomWords(Rng, N, BD);
  const std::vector<Word> K = randomWords(Rng, N, KD);

  auto Check = [&](const char *Op, auto Apply) {
    std::vector<Word> DF = Dst0, DR = Dst0;
    const bool CF = Apply(Fast, DF);
    const bool CR = Apply(Ref, DR);
    EXPECT_EQ(CF, CR) << Op << " changed-flag mismatch at N=" << N;
    EXPECT_EQ(DF, DR) << Op << " destination words diverge at N=" << N;
  };

  Check("Or", [&](const simd::WordKernels &T, std::vector<Word> &D) {
    return T.Or(D.data(), A.data(), N);
  });
  Check("And", [&](const simd::WordKernels &T, std::vector<Word> &D) {
    return T.And(D.data(), A.data(), N);
  });
  Check("AndNot", [&](const simd::WordKernels &T, std::vector<Word> &D) {
    return T.AndNot(D.data(), A.data(), N);
  });
  Check("OrAndNot", [&](const simd::WordKernels &T, std::vector<Word> &D) {
    return T.OrAndNot(D.data(), A.data(), B.data(), N);
  });
  Check("OrIntersect", [&](const simd::WordKernels &T, std::vector<Word> &D) {
    return T.OrIntersect(D.data(), A.data(), K.data(), N);
  });
  Check("OrIntersectMinus",
        [&](const simd::WordKernels &T, std::vector<Word> &D) {
          return T.OrIntersectMinus(D.data(), A.data(), K.data(), B.data(), N);
        });
}

TEST(SimdKernels, DispatchedTableMatchesScalarReference) {
  std::mt19937_64 Rng(testseed::baseSeed(1));
  // 0 and 1 words, the vector width, one past it, and sizes long enough
  // that AVX2 (4 words/lane) and NEON (2 words/lane) both run full
  // vectors plus a ragged tail.
  for (std::size_t N : {std::size_t(0), std::size_t(1), std::size_t(2),
                        std::size_t(3), std::size_t(4), std::size_t(5),
                        std::size_t(7), std::size_t(8), std::size_t(9),
                        std::size_t(16), std::size_t(33)})
    for (int Round = 0; Round != 64; ++Round)
      diffKernelsOnce(Rng, N);
}

TEST(SimdKernels, NoChangeMeansFalse) {
  // Or with a subset must report no change — the solvers' fixpoint test.
  const simd::WordKernels &Fast = simd::kernels();
  for (std::size_t N : {std::size_t(1), std::size_t(4), std::size_t(9)}) {
    std::vector<Word> Dst(N, ~Word(0));
    std::vector<Word> A(N, Word(0x5555555555555555ULL));
    EXPECT_FALSE(Fast.Or(Dst.data(), A.data(), N));
    EXPECT_FALSE(Fast.OrAndNot(Dst.data(), A.data(), A.data(), N));
    EXPECT_FALSE(Fast.OrIntersect(Dst.data(), A.data(), A.data(), N));
    for (Word W : Dst)
      EXPECT_EQ(W, ~Word(0));
  }
}

TEST(SimdKernels, DispatchedIsaNamesTheTable) {
  EXPECT_STREQ(simd::dispatchedIsa(), simd::kernels().Name);
#ifdef IPSE_SIMD_OFF
  EXPECT_STREQ(simd::dispatchedIsa(), "scalar");
#endif
}

//===----------------------------------------------------------------------===//
// EffectSet differential: every representation vs a naive model
//===----------------------------------------------------------------------===//

/// The oracle: a bit set nobody optimized.
struct NaiveSet {
  std::vector<bool> Bits;

  explicit NaiveSet(std::size_t N) : Bits(N, false) {}

  bool orWith(const NaiveSet &R) {
    bool Changed = false;
    for (std::size_t I = 0; I != Bits.size(); ++I)
      if (R.Bits[I] && !Bits[I])
        Bits[I] = true, Changed = true;
    return Changed;
  }
  bool andWith(const NaiveSet &R) {
    bool Changed = false;
    for (std::size_t I = 0; I != Bits.size(); ++I)
      if (Bits[I] && !R.Bits[I])
        Bits[I] = false, Changed = true;
    return Changed;
  }
  bool andNotWith(const NaiveSet &R) {
    bool Changed = false;
    for (std::size_t I = 0; I != Bits.size(); ++I)
      if (Bits[I] && R.Bits[I])
        Bits[I] = false, Changed = true;
    return Changed;
  }
  bool orWithAndNot(const NaiveSet &A, const NaiveSet &B) {
    bool Changed = false;
    for (std::size_t I = 0; I != Bits.size(); ++I)
      if (A.Bits[I] && !B.Bits[I] && !Bits[I])
        Bits[I] = true, Changed = true;
    return Changed;
  }
  bool orWithIntersect(const NaiveSet &A, const NaiveSet &K) {
    bool Changed = false;
    for (std::size_t I = 0; I != Bits.size(); ++I)
      if (A.Bits[I] && K.Bits[I] && !Bits[I])
        Bits[I] = true, Changed = true;
    return Changed;
  }
  bool orWithIntersectMinus(const NaiveSet &A, const NaiveSet &K,
                            const NaiveSet &D) {
    bool Changed = false;
    for (std::size_t I = 0; I != Bits.size(); ++I)
      if (A.Bits[I] && K.Bits[I] && !D.Bits[I] && !Bits[I])
        Bits[I] = true, Changed = true;
    return Changed;
  }
};

void expectSame(const EffectSet &S, const NaiveSet &M, const char *What) {
  ASSERT_EQ(S.size(), M.Bits.size());
  std::size_t Count = 0;
  for (std::size_t I = 0; I != M.Bits.size(); ++I) {
    Count += M.Bits[I];
    ASSERT_EQ(S.test(I), static_cast<bool>(M.Bits[I]))
        << What << ": bit " << I << " diverges (universe " << S.size()
        << ", " << (S.isDense() ? "dense" : "sparse") << " form)";
  }
  EXPECT_EQ(S.count(), Count) << What;
  EXPECT_EQ(S.none(), Count == 0) << What;

  // findNext / iteration must walk exactly the model's set bits.
  std::size_t Prev = 0;
  std::vector<std::size_t> FromIter;
  for (std::size_t I : S) {
    FromIter.push_back(I);
    (void)Prev;
  }
  std::vector<std::size_t> FromModel;
  for (std::size_t I = 0; I != M.Bits.size(); ++I)
    if (M.Bits[I])
      FromModel.push_back(I);
  EXPECT_EQ(FromIter, FromModel) << What;
}

EffectSet::Representation pickRepr(std::mt19937_64 &Rng) {
  switch (Rng() % 3) {
  case 0:
    return EffectSet::Representation::Auto;
  case 1:
    return EffectSet::Representation::Dense;
  default:
    return EffectSet::Representation::Sparse;
  }
}

void fillRandom(std::mt19937_64 &Rng, EffectSet &S, NaiveSet &M,
                int Density) {
  const std::size_t N = S.size();
  if (Density == 3) { // full
    for (std::size_t I = 0; I != N; ++I) {
      S.set(I);
      M.Bits[I] = true;
    }
    return;
  }
  if (Density == 0) // empty
    return;
  const std::size_t Pop =
      Density == 1 ? (Rng() % 8) : (N ? Rng() % N : 0); // sparse vs any
  for (std::size_t K = 0; K != Pop; ++K) {
    const std::size_t I = N ? Rng() % N : 0;
    if (!N)
      break;
    S.set(I);
    M.Bits[I] = true;
  }
}

/// One random battle: build three operand sets (each with its own
/// representation policy) plus a destination, apply a random op to both
/// the EffectSet and the model, check bit-for-bit agreement and matching
/// change flags, then cross-check the relational queries.
void effectSetBattleOnce(std::mt19937_64 &Rng, std::size_t N) {
  EffectSet Dst(N, pickRepr(Rng));
  EffectSet A(N, pickRepr(Rng));
  EffectSet K(N, pickRepr(Rng));
  EffectSet D(N, pickRepr(Rng));
  NaiveSet MDst(N), MA(N), MK(N), MD(N);
  fillRandom(Rng, Dst, MDst, static_cast<int>(Rng() % 4));
  fillRandom(Rng, A, MA, static_cast<int>(Rng() % 4));
  fillRandom(Rng, K, MK, static_cast<int>(Rng() % 4));
  fillRandom(Rng, D, MD, static_cast<int>(Rng() % 4));

  // Occasionally force a representation flip mid-life: an Auto set that
  // already densified, or an explicit densify/sparsify round trip.
  if (Rng() % 4 == 0) {
    EffectSet Copy = A;
    Copy.densify();
    EXPECT_TRUE(Copy == A);
    Copy.sparsify();
    EXPECT_TRUE(Copy == A);
  }

  bool Changed = false, MChanged = false;
  const char *Op = "";
  switch (Rng() % 6) {
  case 0:
    Op = "orWith";
    Changed = Dst.orWith(A);
    MChanged = MDst.orWith(MA);
    break;
  case 1:
    Op = "andWith";
    Changed = Dst.andWith(A);
    MChanged = MDst.andWith(MA);
    break;
  case 2:
    Op = "andNotWith";
    Changed = Dst.andNotWith(A);
    MChanged = MDst.andNotWith(MA);
    break;
  case 3:
    Op = "orWithAndNot";
    Changed = Dst.orWithAndNot(A, D);
    MChanged = MDst.orWithAndNot(MA, MD);
    break;
  case 4:
    Op = "orWithIntersect";
    Changed = Dst.orWithIntersect(A, K);
    MChanged = MDst.orWithIntersect(MA, MK);
    break;
  default:
    Op = "orWithIntersectMinus";
    Changed = Dst.orWithIntersectMinus(A, K, D);
    MChanged = MDst.orWithIntersectMinus(MA, MK, MD);
    break;
  }
  EXPECT_EQ(Changed, MChanged) << Op << " change flag at universe " << N;
  expectSame(Dst, MDst, Op);
  expectSame(A, MA, "operand A untouched");

  // Relational queries, cross-representation.
  bool ModelIntersects = false, ModelSubset = true;
  for (std::size_t I = 0; I != N; ++I) {
    ModelIntersects = ModelIntersects || (MDst.Bits[I] && MA.Bits[I]);
    ModelSubset = ModelSubset && (!MA.Bits[I] || MDst.Bits[I]);
  }
  EXPECT_EQ(Dst.intersects(A), ModelIntersects);
  EXPECT_EQ(A.isSubsetOf(Dst), ModelSubset);
  EXPECT_EQ(Dst == A, MDst.Bits == MA.Bits);
}

TEST(EffectSetDifferential, RandomOpsMatchNaiveModelAcrossRepresentations) {
  std::mt19937_64 Rng(testseed::baseSeed(1));
  // 63/64/65 straddle the word boundary; 1 and 129 exercise the single-
  // word and multi-word-plus-tail shapes; 512 runs full vector bodies.
  for (std::size_t N : {std::size_t(1), std::size_t(63), std::size_t(64),
                        std::size_t(65), std::size_t(129), std::size_t(512)})
    for (int Round = 0; Round != 200; ++Round)
      effectSetBattleOnce(Rng, N);
}

TEST(EffectSetDifferential, AutoPolicyDensifiesAtThresholdAndStaysEqual) {
  const std::size_t N = 64 * 20; // threshold = 40
  EffectSet S(N, EffectSet::Representation::Auto);
  NaiveSet M(N);
  const std::size_t Threshold = EffectSet::densifyThreshold(N);
  for (std::size_t I = 0; I != Threshold + 8; ++I) {
    S.set(I * 3 % N);
    M.Bits[I * 3 % N] = true;
    expectSame(S, M, "during densify crossover");
  }
  EXPECT_TRUE(S.isDense()) << "population " << S.count()
                           << " past threshold " << Threshold;
  // Pinned-sparse never densifies; pinned-dense starts dense.
  EffectSet Pinned(N, EffectSet::Representation::Sparse);
  for (std::size_t I = 0; I != Threshold + 8; ++I)
    Pinned.set(I);
  EXPECT_FALSE(Pinned.isDense());
  EffectSet Eager(N, EffectSet::Representation::Dense);
  EXPECT_TRUE(Eager.isDense());
}

TEST(EffectSetDifferential, ExportWordsIsCanonicalAcrossRepresentations) {
  std::mt19937_64 Rng(testseed::baseSeed(1));
  for (std::size_t N : {std::size_t(63), std::size_t(64), std::size_t(65),
                        std::size_t(300)}) {
    EffectSet SpS(N, EffectSet::Representation::Sparse);
    EffectSet DnS(N, EffectSet::Representation::Dense);
    for (int I = 0; I != 40; ++I) {
      const std::size_t Bit = Rng() % N;
      SpS.set(Bit);
      DnS.set(Bit);
    }
    std::vector<EffectSet::Word> WSp, WDn;
    SpS.exportWords(WSp);
    DnS.exportWords(WDn);
    EXPECT_EQ(WSp, WDn) << "canonical export diverges at N=" << N;
    ASSERT_EQ(WSp.size(), SpS.wordCount());

    // Round trip through assignWords restores the same set under any
    // receiving policy.
    EffectSet Back(0, EffectSet::Representation::Auto);
    Back.assignWords(N, WSp.data(), WSp.size());
    EXPECT_TRUE(Back == SpS);
    EXPECT_TRUE(Back == DnS);
  }
}

TEST(EffectSetDifferential, AssignWordsScrubsGhostBits) {
  // A word array with bits past size() (as a corrupted snapshot could
  // carry) must not poison set algebra.
  const std::size_t N = 65;
  std::vector<EffectSet::Word> W = {0, ~EffectSet::Word(0)}; // bits 64..127
  EffectSet S(0);
  S.assignWords(N, W.data(), W.size());
  EXPECT_EQ(S.count(), 1u); // only bit 64 is inside the universe
  EXPECT_TRUE(S.test(64));
  EXPECT_EQ(S.findNext(65), N);
}

TEST(EffectSetDifferential, ResizeKeepsLowBitsDropsHighOnes) {
  for (EffectSet::Representation R :
       {EffectSet::Representation::Auto, EffectSet::Representation::Dense,
        EffectSet::Representation::Sparse}) {
    EffectSet S(130, R);
    S.set(0);
    S.set(63);
    S.set(64);
    S.set(129);
    S.resize(65);
    EXPECT_EQ(S.count(), 3u);
    EXPECT_TRUE(S.test(64));
    EXPECT_EQ(S.size(), 65u);
    S.resize(130);
    EXPECT_EQ(S.count(), 3u) << "regrown bits must be clear";
    EXPECT_FALSE(S.test(129));
  }
}

TEST(EffectSetDifferential, OpAccountingIsRepresentationBlind) {
  // The dense cost model charges wordCount() per mutating op no matter
  // which form executed it — that is what keeps bv_ops byte-stable
  // across --repr and ISA.
  const std::size_t N = 640; // 10 words
  for (EffectSet::Representation R :
       {EffectSet::Representation::Dense, EffectSet::Representation::Sparse}) {
    EffectSet A(N, R), B(N, R);
    A.set(1);
    B.set(2);
    EffectSet::resetOpCount();
    A.orWith(B);
    EXPECT_EQ(EffectSet::opCount(), A.wordCount())
        << "repr " << static_cast<int>(R);
  }
}

} // namespace

IPSE_SEEDED_TEST_MAIN()
