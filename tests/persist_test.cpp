//===- tests/persist_test.cpp - Persistence subsystem tests -------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The persistence subsystem end to end: the binary codec primitives, the
// Edit wire format (decode ∘ encode must be the identity for every kind —
// the WAL's correctness hinges on it), snapshot round trips and corruption
// rejection (every flipped byte and truncated prefix must be *refused*,
// never half-loaded), WAL torn-tail recovery at every cut point, the
// store's init/open/compact/orphan-sweep life cycle, and the crash-recovery
// differential: a session restored from snapshot + recovered WAL tail must
// have planes byte-identical to an uninterrupted run of the same prefix.
//
//===----------------------------------------------------------------------===//

#include "incremental/AnalysisSession.h"
#include "incremental/Edit.h"
#include "persist/Snapshot.h"
#include "persist/Store.h"
#include "persist/Wal.h"
#include "service/AnalysisService.h"
#include "support/Binary.h"
#include "synth/EditGen.h"
#include "synth/ProgramGen.h"
#include "synth/SourceGen.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace ipse;
using incremental::AnalysisSession;
using incremental::Edit;
using incremental::EditKind;
using incremental::SessionPlanes;
using ir::Program;

namespace {

/// A fresh, empty directory under the test temp root.
std::string freshDir(const std::string &Name) {
  std::string D = testing::TempDir() + "ipse_persist_" + Name;
  std::filesystem::remove_all(D);
  std::filesystem::create_directories(D);
  return D;
}

std::vector<std::uint8_t> slurpBytes(const std::string &Path) {
  std::vector<std::uint8_t> Bytes;
  std::string Err;
  EXPECT_TRUE(persist::readFileBytes(Path, Bytes, Err)) << Err;
  return Bytes;
}

void spitBytes(const std::string &Path, const std::vector<std::uint8_t> &B) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(B.data()),
            static_cast<std::streamsize>(B.size()));
  ASSERT_TRUE(Out.good());
}

Program genProgram(unsigned Procs, unsigned Depth, std::uint64_t Seed) {
  synth::ProgramGenConfig Cfg;
  Cfg.NumProcs = Procs;
  Cfg.NumGlobals = 6;
  Cfg.MaxNestDepth = Depth;
  Cfg.Seed = Seed;
  return synth::generateProgram(Cfg);
}

/// Two sessions' exported planes, compared field by field — the
/// "byte-identical" assertion the warm-restart contract promises.
void expectPlanesIdentical(AnalysisSession &A, AnalysisSession &B,
                           const std::string &Context) {
  SessionPlanes PA = A.exportPlanes();
  SessionPlanes PB = B.exportPlanes();
  EXPECT_EQ(PA.Generation, PB.Generation) << Context;
  ASSERT_EQ(PA.Kinds.size(), PB.Kinds.size()) << Context;
  for (std::size_t K = 0; K != PA.Kinds.size(); ++K) {
    const SessionPlanes::KindPlanes &KA = PA.Kinds[K];
    const SessionPlanes::KindPlanes &KB = PB.Kinds[K];
    EXPECT_EQ(KA.Kind, KB.Kind) << Context;
    EXPECT_EQ(KA.Own, KB.Own) << Context << ": Own[" << K << "]";
    EXPECT_EQ(KA.Ext, KB.Ext) << Context << ": Ext[" << K << "]";
    EXPECT_EQ(KA.FormalBits, KB.FormalBits)
        << Context << ": FormalBits[" << K << "]";
    EXPECT_EQ(KA.RModBits, KB.RModBits)
        << Context << ": RModBits[" << K << "]";
    EXPECT_EQ(KA.IModPlus, KB.IModPlus)
        << Context << ": IModPlus[" << K << "]";
    EXPECT_EQ(KA.GMod, KB.GMod) << Context << ": GMod[" << K << "]";
  }
}

//===----------------------------------------------------------------------===//
// Binary primitives.
//===----------------------------------------------------------------------===//

TEST(Binary, Crc32KnownAnswer) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Seed-chaining equals one pass over the concatenation.
  std::uint32_t Chained = crc32("56789", 5, crc32("1234", 4));
  EXPECT_EQ(Chained, 0xCBF43926u);
}

TEST(Binary, ByteWriterReaderRoundTrip) {
  ByteWriter W;
  W.u8(0xAB);
  W.u32(0xDEADBEEFu);
  W.u64(0x0123456789ABCDEFull);
  W.str("hello");
  const std::uint8_t Raw[3] = {1, 2, 3};
  W.raw(Raw, sizeof(Raw));

  ByteReader R(W.data(), W.size());
  std::uint8_t B = 0;
  std::uint32_t U32 = 0;
  std::uint64_t U64 = 0;
  std::string S;
  std::uint8_t Out[3] = {0, 0, 0};
  EXPECT_TRUE(R.u8(B));
  EXPECT_EQ(B, 0xAB);
  EXPECT_TRUE(R.u32(U32));
  EXPECT_EQ(U32, 0xDEADBEEFu);
  EXPECT_TRUE(R.u64(U64));
  EXPECT_EQ(U64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(R.str(S));
  EXPECT_EQ(S, "hello");
  EXPECT_TRUE(R.raw(Out, sizeof(Out)));
  EXPECT_EQ(Out[2], 3);
  EXPECT_TRUE(R.atEnd());
  // Reads past the end fail instead of touching memory.
  EXPECT_FALSE(R.u8(B));
  EXPECT_FALSE(R.u32(U32));
}

TEST(Binary, ReaderRejectsTruncatedString) {
  ByteWriter W;
  W.str("truncate-me");
  // Cut into the string's character bytes: length prefix promises more
  // than the buffer holds.
  ByteReader R(W.data(), W.size() - 4);
  std::string S;
  EXPECT_FALSE(R.str(S));
}

//===----------------------------------------------------------------------===//
// Edit wire format (satellite: decode ∘ encode identity for every kind).
//===----------------------------------------------------------------------===//

/// An edit with *every* field set to a distinctive value, so the identity
/// check covers fields the kind leaves semantically unused too (the codec
/// is deliberately kind-independent).
Edit denseEdit(EditKind K) {
  Edit E;
  E.Kind = K;
  E.Stmt = ir::StmtId(3);
  E.Var = ir::VarId(7);
  E.Proc = ir::ProcId(11);
  E.Callee = ir::ProcId(13);
  E.Call = ir::CallSiteId(17);
  E.Actuals = {ir::Actual::variable(ir::VarId(1)), ir::Actual::expression(),
               ir::Actual::variable(ir::VarId(5))};
  E.Name = "dense_name";
  return E;
}

TEST(EditCodec, DecodeEncodeIsIdentityForEveryKind) {
  for (std::uint8_t K = 0;
       K <= static_cast<std::uint8_t>(EditKind::RemoveProc); ++K) {
    Edit In = denseEdit(static_cast<EditKind>(K));
    ByteWriter W;
    In.encode(W);
    ByteReader R(W.data(), W.size());
    Edit Out;
    ASSERT_TRUE(Edit::decode(R, Out)) << "kind " << unsigned(K);
    EXPECT_TRUE(R.atEnd()) << "kind " << unsigned(K);
    EXPECT_EQ(In, Out) << "kind " << unsigned(K);
  }
}

TEST(EditCodec, DefaultedAndInvalidIdsSurvive) {
  // Invalid-sentinel ids and empty actuals/name must round-trip exactly.
  Edit In; // Everything defaulted.
  ByteWriter W;
  In.encode(W);
  ByteReader R(W.data(), W.size());
  Edit Out;
  ASSERT_TRUE(Edit::decode(R, Out));
  EXPECT_EQ(In, Out);
}

TEST(EditCodec, RejectsBadKindAndTruncation) {
  Edit In = denseEdit(EditKind::AddCall);
  ByteWriter W;
  In.encode(W);

  // Out-of-range kind byte.
  std::vector<std::uint8_t> Bad(W.bytes());
  Bad[0] = static_cast<std::uint8_t>(EditKind::RemoveProc) + 1;
  {
    ByteReader R(Bad.data(), Bad.size());
    Edit Out;
    EXPECT_FALSE(Edit::decode(R, Out));
  }
  // Every proper prefix is rejected.
  for (std::size_t Len = 0; Len != W.size(); ++Len) {
    ByteReader R(W.data(), Len);
    Edit Out;
    EXPECT_FALSE(Edit::decode(R, Out)) << "prefix " << Len;
  }
}

TEST(EditCodec, RandomStreamRoundTrips) {
  Program P = genProgram(20, 2, 99);
  incremental::SessionOptions SO;
  AnalysisSession S(std::move(P), SO);
  synth::EditGenConfig Cfg;
  Cfg.Seed = 5;
  synth::EditGen Gen(Cfg);
  for (int I = 0; I != 250; ++I) {
    std::optional<Edit> E = Gen.next(S.program());
    if (!E)
      break;
    ByteWriter W;
    E->encode(W);
    ByteReader R(W.data(), W.size());
    Edit Out;
    ASSERT_TRUE(Edit::decode(R, Out)) << "edit " << I;
    EXPECT_EQ(*E, Out) << "edit " << I;
    incremental::applyEdit(S, *E);
  }
}

//===----------------------------------------------------------------------===//
// Program codec.
//===----------------------------------------------------------------------===//

TEST(ProgramCodec, RoundTripPreservesEverything) {
  for (unsigned Depth : {1u, 3u}) {
    Program P = genProgram(30, Depth, 17 + Depth);
    ByteWriter W;
    persist::ProgramCodec::encode(P, W);
    ByteReader R(W.data(), W.size());
    Program Q;
    std::string Err;
    ASSERT_TRUE(persist::ProgramCodec::decode(R, Q, Err)) << Err;
    EXPECT_EQ(P.numProcs(), Q.numProcs());
    EXPECT_EQ(P.numVars(), Q.numVars());
    EXPECT_EQ(P.numStmts(), Q.numStmts());
    EXPECT_EQ(P.numCallSites(), Q.numCallSites());
    EXPECT_EQ(P.maxProcLevel(), Q.maxProcLevel());
    // Deep equality via the deterministic source emitter: identical
    // tables emit identical MiniProc.
    EXPECT_EQ(synth::emitMiniProc(P), synth::emitMiniProc(Q));
    // Id stability: every name resolves to the same id in both.
    for (std::uint32_t I = 0; I != P.numProcs(); ++I)
      EXPECT_EQ(P.name(ir::ProcId(I)), Q.name(ir::ProcId(I)));
    for (std::uint32_t I = 0; I != P.numVars(); ++I)
      EXPECT_EQ(P.name(ir::VarId(I)), Q.name(ir::VarId(I)));
  }
}

TEST(ProgramCodec, RejectsTruncatedTables) {
  Program P = genProgram(12, 1, 3);
  ByteWriter W;
  persist::ProgramCodec::encode(P, W);
  for (std::size_t Len : {std::size_t(0), W.size() / 4, W.size() / 2,
                          W.size() - 1}) {
    ByteReader R(W.data(), Len);
    Program Q;
    std::string Err;
    EXPECT_FALSE(persist::ProgramCodec::decode(R, Q, Err))
        << "prefix " << Len;
  }
}

//===----------------------------------------------------------------------===//
// Snapshot files.
//===----------------------------------------------------------------------===//

TEST(Snapshot, RoundTripRestoresWarmSession) {
  std::string Dir = freshDir("snap_roundtrip");
  std::string Path = Dir + "/s.ipsesnap";

  incremental::SessionOptions SO;
  AnalysisSession Live(genProgram(25, 2, 41), SO);
  // Advance past generation 0 so the generation is meaningful.
  ir::VarId G = Live.addGlobal("snap_g");
  Live.addMod(ir::StmtId(0), G);
  Live.flush();
  const std::uint64_t Gen = Live.generation();

  std::string Err;
  ASSERT_TRUE(persist::SnapshotWriter::capture(Path, Live, Err)) << Err;

  persist::SnapshotData Data;
  ASSERT_TRUE(persist::SnapshotReader::read(Path, Data, Err)) << Err;
  EXPECT_EQ(Data.Generation, Gen);
  EXPECT_TRUE(Data.TrackUse);

  AnalysisSession Restored(std::move(Data.Program), SO,
                           std::move(Data.Planes));
  EXPECT_EQ(Restored.generation(), Gen);
  expectPlanesIdentical(Live, Restored, "snapshot round trip");
  // The restore path must not have paid a solve: planes were installed,
  // not recomputed, and the first queries come straight from them.
  for (std::uint32_t I = 0; I != Restored.program().numProcs(); ++I)
    Restored.gmod(ir::ProcId(I));
  EXPECT_EQ(Restored.stats().FullRebuilds, 0u);
}

TEST(Snapshot, EveryFlippedByteIsRejected) {
  std::string Dir = freshDir("snap_flip");
  std::string Path = Dir + "/s.ipsesnap";
  incremental::SessionOptions SO;
  AnalysisSession Live(genProgram(8, 1, 7), SO);
  std::string Err;
  ASSERT_TRUE(persist::SnapshotWriter::capture(Path, Live, Err)) << Err;

  std::vector<std::uint8_t> Good = slurpBytes(Path);
  std::string Tmp = Dir + "/flipped.ipsesnap";
  // Step through the file; every covered byte participates in either the
  // header CRC or a section CRC, so any flip must be caught.
  for (std::size_t Off = 0; Off < Good.size(); Off += 7) {
    std::vector<std::uint8_t> Bad = Good;
    Bad[Off] ^= 0x40;
    spitBytes(Tmp, Bad);
    persist::SnapshotData Data;
    std::string E2;
    EXPECT_FALSE(persist::SnapshotReader::read(Tmp, Data, E2))
        << "flip at offset " << Off << " was not detected";
  }
}

TEST(Snapshot, EveryTruncationIsRejected) {
  std::string Dir = freshDir("snap_trunc");
  std::string Path = Dir + "/s.ipsesnap";
  incremental::SessionOptions SO;
  AnalysisSession Live(genProgram(8, 1, 9), SO);
  std::string Err;
  ASSERT_TRUE(persist::SnapshotWriter::capture(Path, Live, Err)) << Err;

  std::vector<std::uint8_t> Good = slurpBytes(Path);
  std::string Tmp = Dir + "/short.ipsesnap";
  for (std::size_t Len = 0; Len < Good.size(); Len += 11) {
    spitBytes(Tmp, std::vector<std::uint8_t>(Good.begin(),
                                             Good.begin() + Len));
    persist::SnapshotData Data;
    std::string E2;
    EXPECT_FALSE(persist::SnapshotReader::read(Tmp, Data, E2))
        << "truncation to " << Len << " bytes was not detected";
  }
}

TEST(Snapshot, InspectReportsSectionsWithoutDecoding) {
  std::string Dir = freshDir("snap_inspect");
  std::string Path = Dir + "/s.ipsesnap";
  incremental::SessionOptions SO;
  AnalysisSession Live(genProgram(10, 1, 13), SO);
  std::string Err;
  ASSERT_TRUE(persist::SnapshotWriter::capture(Path, Live, Err)) << Err;

  persist::SnapshotInfo Info;
  ASSERT_TRUE(persist::SnapshotReader::inspect(Path, Info, Err)) << Err;
  EXPECT_TRUE(Info.HeaderOk);
  EXPECT_EQ(Info.Version, persist::SnapshotVersion);
  ASSERT_EQ(Info.Sections.size(), 3u);
  EXPECT_EQ(Info.Sections[0].Tag, persist::SectionProgram);
  EXPECT_EQ(Info.Sections[1].Tag, persist::SectionGraphs);
  EXPECT_EQ(Info.Sections[2].Tag, persist::SectionPlanes);
  for (const persist::SnapshotInfo::Section &S : Info.Sections)
    EXPECT_TRUE(S.CrcOk) << persist::sectionTagName(S.Tag);

  // Corrupt one payload byte: inspect still walks the file (no hard
  // failure) but reports exactly that section's CRC as bad.
  std::vector<std::uint8_t> Bad = slurpBytes(Path);
  Bad[Bad.size() - 1] ^= 0xFF; // Last byte of the last section's payload.
  spitBytes(Path, Bad);
  ASSERT_TRUE(persist::SnapshotReader::inspect(Path, Info, Err)) << Err;
  EXPECT_TRUE(Info.HeaderOk);
  ASSERT_EQ(Info.Sections.size(), 3u);
  EXPECT_TRUE(Info.Sections[0].CrcOk);
  EXPECT_TRUE(Info.Sections[1].CrcOk);
  EXPECT_FALSE(Info.Sections[2].CrcOk);
}

TEST(Snapshot, SplicedGraphFingerprintIsRejected) {
  // Flip a byte inside the GRPH payload and *fix its CRC*, simulating a
  // consistent-looking file whose graph fingerprint no longer matches the
  // program: the re-derivation cross-check must refuse it.
  std::string Dir = freshDir("snap_splice");
  std::string Path = Dir + "/s.ipsesnap";
  incremental::SessionOptions SO;
  AnalysisSession Live(genProgram(15, 2, 21), SO);
  std::string Err;
  ASSERT_TRUE(persist::SnapshotWriter::capture(Path, Live, Err)) << Err;

  std::vector<std::uint8_t> Bytes = slurpBytes(Path);
  // Walk: 32-byte header, then tag u32 | len u64 | crc u32 | payload.
  std::size_t Off = 32;
  bool Spliced = false;
  while (Off + 16 <= Bytes.size()) {
    std::uint32_t Tag = 0;
    std::uint64_t Len = 0;
    std::memcpy(&Tag, &Bytes[Off], 4);
    std::memcpy(&Len, &Bytes[Off + 4], 8);
    std::size_t Payload = Off + 16;
    if (Tag == persist::SectionGraphs) {
      // First payload bytes are the condensation's SccOf entries; bump
      // one so the partition disagrees with the re-derived graphs.
      Bytes[Payload] ^= 0x01;
      std::uint32_t NewCrc = crc32(&Bytes[Payload], Len);
      std::memcpy(&Bytes[Off + 12], &NewCrc, 4);
      Spliced = true;
      break;
    }
    Off = Payload + Len;
  }
  ASSERT_TRUE(Spliced);
  spitBytes(Path, Bytes);

  // The CRC now passes — inspect sees a "healthy" file...
  persist::SnapshotInfo Info;
  ASSERT_TRUE(persist::SnapshotReader::inspect(Path, Info, Err)) << Err;
  for (const persist::SnapshotInfo::Section &S : Info.Sections)
    EXPECT_TRUE(S.CrcOk);
  // ...but a full read cross-checks the fingerprint and refuses.
  persist::SnapshotData Data;
  EXPECT_FALSE(persist::SnapshotReader::read(Path, Data, Err));
}

//===----------------------------------------------------------------------===//
// Write-ahead log.
//===----------------------------------------------------------------------===//

/// N distinct valid edits generated against (and applied to) \p S.
std::vector<Edit> editStream(AnalysisSession &S, unsigned N,
                             std::uint64_t Seed) {
  synth::EditGenConfig Cfg;
  Cfg.Seed = Seed;
  synth::EditGen Gen(Cfg);
  std::vector<Edit> Edits;
  while (Edits.size() < N) {
    std::optional<Edit> E = Gen.next(S.program());
    if (!E)
      break;
    incremental::applyEdit(S, *E);
    Edits.push_back(std::move(*E));
  }
  return Edits;
}

TEST(Wal, AppendRecoverRoundTrip) {
  std::string Dir = freshDir("wal_roundtrip");
  std::string Path = Dir + "/w.ipselog";

  incremental::SessionOptions SO;
  AnalysisSession S(genProgram(15, 1, 31), SO);

  persist::Wal Log;
  std::string Err;
  ASSERT_TRUE(persist::Wal::create(Path, 42, Log, Err)) << Err;
  std::vector<Edit> Edits = editStream(S, 40, 8);
  ASSERT_GE(Edits.size(), 10u);
  // Mixed batch sizes: singles and groups share one format.
  ASSERT_TRUE(Log.append({Edits.begin(), Edits.begin() + 3}, Err)) << Err;
  for (std::size_t I = 3; I != Edits.size(); ++I)
    ASSERT_TRUE(Log.append({Edits[I]}, Err)) << Err;
  EXPECT_EQ(Log.recordCount(), Edits.size());
  Log.close();

  persist::WalRecovery WR;
  ASSERT_TRUE(persist::Wal::recover(Path, WR, Err)) << Err;
  EXPECT_EQ(WR.BaseGeneration, 42u);
  EXPECT_EQ(WR.TruncatedBytes, 0u);
  ASSERT_EQ(WR.Edits.size(), Edits.size());
  for (std::size_t I = 0; I != Edits.size(); ++I)
    EXPECT_EQ(WR.Edits[I], Edits[I]) << "record " << I;
}

TEST(Wal, TornTailIsTruncatedAtEveryCut) {
  std::string Dir = freshDir("wal_torn");
  std::string Path = Dir + "/w.ipselog";

  incremental::SessionOptions SO;
  AnalysisSession S(genProgram(12, 1, 33), SO);
  persist::Wal Log;
  std::string Err;
  ASSERT_TRUE(persist::Wal::create(Path, 0, Log, Err)) << Err;
  std::vector<Edit> Edits = editStream(S, 25, 9);
  for (const Edit &E : Edits)
    ASSERT_TRUE(Log.append({E}, Err)) << Err;
  Log.close();

  std::vector<std::uint8_t> Good = slurpBytes(Path);
  const std::size_t HeaderBytes = 24;
  std::string Tmp = Dir + "/cut.ipselog";
  for (std::size_t Cut = HeaderBytes; Cut < Good.size(); Cut += 5) {
    spitBytes(Tmp, std::vector<std::uint8_t>(Good.begin(),
                                             Good.begin() + Cut));
    persist::WalRecovery WR;
    ASSERT_TRUE(persist::Wal::recover(Tmp, WR, Err))
        << "cut " << Cut << ": " << Err;
    // Whatever survived is an exact prefix of what was appended.
    ASSERT_LE(WR.Edits.size(), Edits.size()) << "cut " << Cut;
    for (std::size_t I = 0; I != WR.Edits.size(); ++I)
      EXPECT_EQ(WR.Edits[I], Edits[I]) << "cut " << Cut << " record " << I;
    // The torn bytes are gone from disk and the accounting agrees.
    EXPECT_EQ(WR.ValidBytes + WR.TruncatedBytes, Cut) << "cut " << Cut;
    EXPECT_EQ(std::filesystem::file_size(Tmp), WR.ValidBytes)
        << "cut " << Cut;
  }
  // A cut exactly at the end recovers everything.
  persist::WalRecovery Full;
  ASSERT_TRUE(persist::Wal::recover(Path, Full, Err)) << Err;
  EXPECT_EQ(Full.Edits.size(), Edits.size());
  EXPECT_EQ(Full.TruncatedBytes, 0u);
}

TEST(Wal, AppendsResumeAfterTornTailRecovery) {
  std::string Dir = freshDir("wal_resume");
  std::string Path = Dir + "/w.ipselog";

  incremental::SessionOptions SO;
  AnalysisSession S(genProgram(12, 1, 35), SO);
  persist::Wal Log;
  std::string Err;
  ASSERT_TRUE(persist::Wal::create(Path, 0, Log, Err)) << Err;
  std::vector<Edit> Edits = editStream(S, 12, 11);
  for (const Edit &E : Edits)
    ASSERT_TRUE(Log.append({E}, Err)) << Err;
  Log.close();

  // Tear mid-way through the last record.
  std::vector<std::uint8_t> Good = slurpBytes(Path);
  spitBytes(Path, std::vector<std::uint8_t>(Good.begin(), Good.end() - 3));

  persist::WalRecovery WR;
  ASSERT_TRUE(persist::Wal::recover(Path, WR, Err)) << Err;
  ASSERT_EQ(WR.Edits.size(), Edits.size() - 1);
  EXPECT_GT(WR.TruncatedBytes, 0u);

  persist::Wal Reopened;
  ASSERT_TRUE(persist::Wal::openForAppend(Path, WR, Reopened, Err)) << Err;
  EXPECT_EQ(Reopened.recordCount(), Edits.size() - 1);
  ASSERT_TRUE(Reopened.append({Edits.back()}, Err)) << Err;
  Reopened.close();

  persist::WalRecovery Again;
  ASSERT_TRUE(persist::Wal::recover(Path, Again, Err)) << Err;
  ASSERT_EQ(Again.Edits.size(), Edits.size());
  for (std::size_t I = 0; I != Edits.size(); ++I)
    EXPECT_EQ(Again.Edits[I], Edits[I]) << "record " << I;
}

TEST(Wal, CorruptHeaderIsAHardError) {
  std::string Dir = freshDir("wal_badheader");
  std::string Path = Dir + "/w.ipselog";
  persist::Wal Log;
  std::string Err;
  ASSERT_TRUE(persist::Wal::create(Path, 5, Log, Err)) << Err;
  Log.close();

  std::vector<std::uint8_t> Bytes = slurpBytes(Path);
  Bytes[1] ^= 0xFF; // Damage the magic.
  spitBytes(Path, Bytes);
  persist::WalRecovery WR;
  EXPECT_FALSE(persist::Wal::recover(Path, WR, Err));
}

//===----------------------------------------------------------------------===//
// The crash-recovery differential (the subsystem's acceptance test).
//===----------------------------------------------------------------------===//

TEST(CrashRecovery, RecoveredPlanesMatchUninterruptedRunAtEveryCut) {
  // One base program, one snapshot, one WAL of N single-edit appends —
  // then "kill" the writer at assorted byte offsets, recover, replay the
  // surviving tail on a restored session, and demand planes byte-identical
  // to an uninterrupted session that applied exactly the same prefix.
  std::string Dir = freshDir("crash_diff");
  std::string SnapPath = Dir + "/base.ipsesnap";
  std::string WalPath = Dir + "/w.ipselog";

  Program Base = genProgram(30, 2, 77);
  incremental::SessionOptions SO;

  // The "server": snapshot at generation 0, then WAL + apply each edit.
  AnalysisSession Writer(Base, SO);
  std::string Err;
  ASSERT_TRUE(persist::SnapshotWriter::capture(SnapPath, Writer, Err)) << Err;
  persist::Wal Log;
  ASSERT_TRUE(persist::Wal::create(WalPath, Writer.generation(), Log, Err))
      << Err;
  std::vector<Edit> Edits = editStream(Writer, 50, 13);
  ASSERT_GE(Edits.size(), 20u);
  for (const Edit &E : Edits)
    ASSERT_TRUE(Log.append({E}, Err)) << Err;
  Log.close();

  std::vector<std::uint8_t> WalBytes = slurpBytes(WalPath);
  // Deterministic pseudo-random cut offsets across the whole file, plus
  // the exact end (clean-shutdown recovery).
  std::vector<std::size_t> Cuts;
  for (std::size_t I = 1; I <= 7; ++I)
    Cuts.push_back(24 + (I * 2654435761u) % (WalBytes.size() - 24));
  Cuts.push_back(WalBytes.size());

  for (std::size_t Cut : Cuts) {
    SCOPED_TRACE("cut at byte " + std::to_string(Cut));
    std::string CutPath = Dir + "/cut.ipselog";
    spitBytes(CutPath, std::vector<std::uint8_t>(WalBytes.begin(),
                                                 WalBytes.begin() + Cut));
    persist::WalRecovery WR;
    ASSERT_TRUE(persist::Wal::recover(CutPath, WR, Err)) << Err;

    // Restore from the snapshot and replay the recovered tail.
    persist::SnapshotData Data;
    ASSERT_TRUE(persist::SnapshotReader::read(SnapPath, Data, Err)) << Err;
    AnalysisSession Recovered(std::move(Data.Program), SO,
                              std::move(Data.Planes));
    for (const Edit &E : WR.Edits)
      incremental::applyEdit(Recovered, E);

    // The uninterrupted run of the same prefix.
    AnalysisSession Reference(Base, SO);
    for (std::size_t I = 0; I != WR.Edits.size(); ++I)
      incremental::applyEdit(Reference, Edits[I]);

    expectPlanesIdentical(Reference, Recovered, "prefix of " +
                          std::to_string(WR.Edits.size()) + " edits");
  }
}

//===----------------------------------------------------------------------===//
// Store life cycle.
//===----------------------------------------------------------------------===//

TEST(Store, InitAppendCrashOpenReplays) {
  std::string Dir = freshDir("store_lifecycle");
  incremental::SessionOptions SO;
  AnalysisSession Live(genProgram(18, 2, 55), SO);

  persist::StoreOptions PO; // Thresholds high: no auto-compaction here.
  std::string Err;
  EXPECT_FALSE(persist::Store::exists(Dir));
  {
    persist::Store S;
    ASSERT_TRUE(persist::Store::init(Dir, PO, Live, S, Err)) << Err;
    EXPECT_TRUE(persist::Store::exists(Dir));
    std::vector<Edit> Edits = editStream(Live, 15, 3);
    for (const Edit &E : Edits)
      ASSERT_TRUE(S.appendEdits({E}, Err)) << Err;
    EXPECT_EQ(S.walRecords(), Edits.size());
    // Scope exit without compact() = the crash: the WAL is fsync'd, the
    // snapshot is stale, recovery must bridge the difference.
  }

  persist::Store Reopened;
  persist::RecoveredState RS;
  ASSERT_TRUE(persist::Store::open(Dir, PO, Reopened, RS, Err)) << Err;
  EXPECT_EQ(RS.Snapshot.Generation, 0u);
  EXPECT_EQ(RS.TruncatedBytes, 0u);
  EXPECT_EQ(RS.Tail.size(), 15u);

  AnalysisSession Recovered(std::move(RS.Snapshot.Program), SO,
                            std::move(RS.Snapshot.Planes));
  for (const Edit &E : RS.Tail)
    incremental::applyEdit(Recovered, E);
  expectPlanesIdentical(Live, Recovered, "store reopen");
}

TEST(Store, CompactRotatesFilesAndSweepsOrphans) {
  std::string Dir = freshDir("store_compact");
  incremental::SessionOptions SO;
  AnalysisSession Live(genProgram(10, 1, 61), SO);

  persist::StoreOptions PO;
  PO.CompactWalRecords = 4;
  std::string Err;
  persist::Store S;
  ASSERT_TRUE(persist::Store::init(Dir, PO, Live, S, Err)) << Err;
  EXPECT_FALSE(S.shouldCompact());

  std::vector<Edit> Edits = editStream(Live, 6, 19);
  ASSERT_GE(Edits.size(), 4u);
  for (const Edit &E : Edits)
    ASSERT_TRUE(S.appendEdits({E}, Err)) << Err;
  EXPECT_TRUE(S.shouldCompact());

  ASSERT_TRUE(S.compact(Live, Err)) << Err;
  EXPECT_EQ(S.walRecords(), 0u);
  EXPECT_EQ(S.snapshotGeneration(), Live.generation());
  // The old generation-0 pair is gone; the new pair is on disk.
  EXPECT_FALSE(std::filesystem::exists(Dir + "/snap-0.ipsesnap"));
  EXPECT_FALSE(std::filesystem::exists(Dir + "/wal-0.ipselog"));
  std::string Gen = std::to_string(Live.generation());
  EXPECT_TRUE(std::filesystem::exists(Dir + "/snap-" + Gen + ".ipsesnap"));
  EXPECT_TRUE(std::filesystem::exists(Dir + "/wal-" + Gen + ".ipselog"));

  // Plant a dead pair a crashed compaction could have left: the next
  // open() sweeps store-owned orphans but must leave foreign files alone.
  std::ofstream(Dir + "/snap-999.ipsesnap") << "junk";
  std::ofstream(Dir + "/wal-999.ipselog") << "junk";
  std::ofstream(Dir + "/notes.txt") << "keep me";
  persist::Store Reopened;
  persist::RecoveredState RS;
  ASSERT_TRUE(persist::Store::open(Dir, PO, Reopened, RS, Err)) << Err;
  EXPECT_FALSE(std::filesystem::exists(Dir + "/snap-999.ipsesnap"));
  EXPECT_FALSE(std::filesystem::exists(Dir + "/wal-999.ipselog"));
  EXPECT_TRUE(std::filesystem::exists(Dir + "/notes.txt"));
  EXPECT_TRUE(RS.Tail.empty()); // Compaction emptied the WAL.
}

//===----------------------------------------------------------------------===//
// Service integration: durable mode end to end (in-process).
//===----------------------------------------------------------------------===//

TEST(ServicePersist, WarmRestartResumesGenerationAndAnswers) {
  std::string Dir = freshDir("svc_warm");
  service::ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.DataDir = Dir;

  std::string GModMain;
  std::uint64_t Gen = 0;
  {
    service::AnalysisService Svc(genProgram(12, 1, 71), Opts);
    ASSERT_TRUE(Svc.call("add-global persist_g").Ok);
    ASSERT_TRUE(Svc.call("add-stmt main").Ok);
    ASSERT_TRUE(Svc.call("add-mod main 0 persist_g").Ok);
    service::Response R = Svc.call("gmod main");
    ASSERT_TRUE(R.Ok);
    GModMain = R.Result;
    EXPECT_NE(GModMain.find("persist_g"), std::string::npos) << GModMain;
    Gen = Svc.generation();
    EXPECT_GE(Gen, 2u);
  } // Clean stop: drains, final-compacts.

  // Restart from the directory alone — the constructor's program is a
  // placeholder and must be ignored.
  service::AnalysisService Again(Program(), Opts);
  EXPECT_EQ(Again.generation(), Gen);
  service::Response R = Again.call("gmod main");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Result, GModMain);
  ASSERT_TRUE(Again.call("check").CheckOk);
}

TEST(ServicePersist, CrashWithWalTailRestartsWarm) {
  // Simulate the SIGKILL case: copy the store directory while the service
  // is live (edits acknowledged = fsync'd, but no final compaction), then
  // recover a second service from the copy and compare answers.
  std::string Dir = freshDir("svc_crash");
  std::string CrashCopy = freshDir("svc_crash_copy");
  service::ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.DataDir = Dir;

  service::AnalysisService Svc(genProgram(12, 1, 73), Opts);
  ASSERT_TRUE(Svc.call("add-global crash_g").Ok);
  ASSERT_TRUE(Svc.call("add-stmt main").Ok);
  ASSERT_TRUE(Svc.call("add-mod main 0 crash_g").Ok);
  service::Response Live = Svc.call("gmod main");
  ASSERT_TRUE(Live.Ok);
  std::uint64_t Gen = Svc.generation();

  // The acknowledged edits are on disk *now*; this copy is exactly what a
  // kill -9 would leave behind.
  std::filesystem::copy(Dir, CrashCopy,
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing);

  service::ServiceOptions Opts2 = Opts;
  Opts2.DataDir = CrashCopy;
  service::AnalysisService Recovered(Program(), Opts2);
  EXPECT_EQ(Recovered.generation(), Gen);
  service::Response R = Recovered.call("gmod main");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Result, Live.Result);
  ASSERT_TRUE(Recovered.call("check").CheckOk);
}

TEST(ServicePersist, TrackUseFollowsTheStoreOnRecovery) {
  std::string Dir = freshDir("svc_trackuse");
  service::ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.DataDir = Dir;
  Opts.TrackUse = false;
  { service::AnalysisService Svc(genProgram(6, 1, 79), Opts); }

  // Ask for TrackUse on restart: the store says off, the store wins.
  service::ServiceOptions Opts2 = Opts;
  Opts2.TrackUse = true;
  service::AnalysisService Again(Program(), Opts2);
  EXPECT_FALSE(Again.options().TrackUse);
}

TEST(ServicePersist, UnusableDataDirFailsLoudly) {
  // A merely *missing* directory is created on first boot; a path that
  // cannot be a directory (its parent is a regular file) must throw, not
  // silently run without durability.
  std::string Dir = freshDir("svc_baddir");
  std::string File = Dir + "/occupied";
  spitBytes(File, {0x00});
  service::ServiceOptions Opts;
  Opts.DataDir = File + "/store";
  EXPECT_THROW(service::AnalysisService(genProgram(4, 1, 83), Opts),
               std::runtime_error);
}

} // namespace
