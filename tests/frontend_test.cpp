//===- tests/frontend_test.cpp - MiniProc lexer/parser/sema tests -------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace ipse;
using namespace ipse::frontend;
using namespace ipse::ir;

namespace {

std::vector<TokenKind> kindsOf(const std::string &Source) {
  DiagnosticEngine Diags;
  std::vector<Token> Tokens = lex(Source, Diags);
  std::vector<TokenKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(Lexer, BasicTokens) {
  auto Kinds = kindsOf("x := y + 42;");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Assign, TokenKind::Identifier,
      TokenKind::Plus,       TokenKind::Number, TokenKind::Semicolon,
      TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, Keywords) {
  auto Kinds = kindsOf("program proc var begin end call if then else "
                       "while do read write");
  EXPECT_EQ(Kinds.size(), 14u); // 13 keywords + eof.
  EXPECT_EQ(Kinds[0], TokenKind::KwProgram);
  EXPECT_EQ(Kinds[12], TokenKind::KwWrite);
}

TEST(Lexer, KeywordsAreNotPrefixes) {
  auto Kinds = kindsOf("programx beginx end2");
  EXPECT_EQ(Kinds[0], TokenKind::Identifier);
  EXPECT_EQ(Kinds[1], TokenKind::Identifier);
  EXPECT_EQ(Kinds[2], TokenKind::Identifier);
}

TEST(Lexer, Comments) {
  auto Kinds = kindsOf("x // line comment\n:= { block\ncomment } 1");
  std::vector<TokenKind> Expected = {TokenKind::Identifier, TokenKind::Assign,
                                     TokenKind::Number, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, PositionsAreTracked) {
  DiagnosticEngine Diags;
  std::vector<Token> Tokens = lex("ab\n  cd", Diags);
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Col, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
}

TEST(Lexer, BadCharacterReported) {
  DiagnosticEngine Diags;
  lex("x ? y", Diags);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.all()[0].Message.find("unexpected character"),
            std::string::npos);
}

TEST(Lexer, LoneColonReported) {
  DiagnosticEngine Diags;
  lex("x : y", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnterminatedBlockComment) {
  DiagnosticEngine Diags;
  lex("x { never closed", Diags);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.all()[0].Message.find("unterminated"), std::string::npos);
}

const char *GoodProgram = R"(
program main;
var g, h;
proc q(c);
begin
  c := g;
end;
proc p(a, b);
var x;
begin
  x := a + 1;
  call q(b);
  h := 2;
end;
begin
  p(g, h);      // call keyword is optional
  write g;
end.
)";

TEST(Parser, AcceptsGoodProgram) {
  DiagnosticEngine Diags;
  std::vector<Token> Tokens = lex(GoodProgram, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  auto Ast = parse(Tokens, Diags);
  ASSERT_NE(Ast, nullptr) << Diags.renderAll();
  EXPECT_EQ(Ast->Name, "main");
  EXPECT_EQ(Ast->Vars.size(), 2u);
  EXPECT_EQ(Ast->Procs.size(), 2u);
  EXPECT_EQ(Ast->Procs[0]->Name, "q");
  EXPECT_EQ(Ast->Procs[1]->Params.size(), 2u);
  EXPECT_EQ(Ast->Body.size(), 2u);
}

TEST(Parser, IfWhileNesting) {
  const char *Src = R"(
program t; var a, b;
begin
  if a then
    a := 1;
    while b do b := b - 1; end;
  else
    b := 2;
  end;
end.
)";
  DiagnosticEngine Diags;
  auto Ast = parse(lex(Src, Diags), Diags);
  ASSERT_NE(Ast, nullptr) << Diags.renderAll();
  ASSERT_EQ(Ast->Body.size(), 1u);
  EXPECT_EQ(Ast->Body[0]->K, ast::Stmt::Kind::If);
  EXPECT_EQ(Ast->Body[0]->Then.size(), 2u);
  EXPECT_EQ(Ast->Body[0]->Else.size(), 1u);
}

TEST(Parser, ReportsMissingDot) {
  DiagnosticEngine Diags;
  auto Ast = parse(lex("program t; begin end", Diags), Diags);
  EXPECT_EQ(Ast, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  const char *Src = R"(
program t; var a;
begin
  a := ;
  a := ;
end.
)";
  DiagnosticEngine Diags;
  auto Ast = parse(lex(Src, Diags), Diags);
  EXPECT_EQ(Ast, nullptr);
  EXPECT_GE(Diags.all().size(), 2u);
}

TEST(Parser, ExpressionPrecedence) {
  DiagnosticEngine Diags;
  auto Ast = parse(lex("program t; var a, b, c;\nbegin a := a + b * c; end.",
                       Diags),
                   Diags);
  ASSERT_NE(Ast, nullptr);
  const ast::Expr &E = *Ast->Body[0]->Value;
  ASSERT_EQ(E.K, ast::Expr::Kind::Binary);
  EXPECT_EQ(E.Op, '+'); // * binds tighter.
  EXPECT_EQ(E.Rhs->Op, '*');
}

TEST(Sema, LowersGoodProgram) {
  CompileResult R = compileMiniProc(GoodProgram);
  ASSERT_TRUE(R.succeeded()) << R.Diags.renderAll();
  const Program &P = *R.Program;
  EXPECT_EQ(P.numProcs(), 3u);
  EXPECT_EQ(P.numVars(), 6u); // g h c a b x.
  EXPECT_EQ(P.numCallSites(), 2u);
  std::string Error;
  EXPECT_TRUE(P.verify(Error)) << Error;
  EXPECT_EQ(P.name(ProcId(1)), "q");
  EXPECT_EQ(P.name(ProcId(2)), "p");
}

TEST(Sema, AnalysisOfCompiledProgram) {
  CompileResult R = compileMiniProc(GoodProgram);
  ASSERT_TRUE(R.succeeded());
  const Program &P = *R.Program;
  analysis::SideEffectAnalyzer An(P);

  // Same expectations as the hand-built running example in
  // analysis_test.cpp: GMOD(p) = {x, h, b}; GMOD(main) = {h}.
  ProcId PProc(2);
  EXPECT_EQ(An.setToString(An.gmod(PProc)), "h, p.b, p.x");
  EXPECT_EQ(An.setToString(An.gmod(P.main())), "h");
}

TEST(Sema, UndeclaredNameReported) {
  CompileResult R = compileMiniProc("program t;\nbegin x := 1; end.");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.Diags.renderAll().find("undeclared"), std::string::npos);
}

TEST(Sema, DuplicateDeclarationReported) {
  CompileResult R =
      compileMiniProc("program t; var a, a;\nbegin a := 1; end.");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.Diags.renderAll().find("duplicate"), std::string::npos);
}

TEST(Sema, ArityMismatchReported) {
  CompileResult R = compileMiniProc(R"(
program t; var g;
proc p(a); begin a := 1; end;
begin call p(g, g); end.
)");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.Diags.renderAll().find("expects 1 argument"),
            std::string::npos);
}

TEST(Sema, CallingAVariableReported) {
  CompileResult R = compileMiniProc(R"(
program t; var g;
begin call g(); end.
)");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.Diags.renderAll().find("not a procedure"), std::string::npos);
}

TEST(Sema, AssigningAProcedureReported) {
  CompileResult R = compileMiniProc(R"(
program t;
proc p(); begin end;
begin p := 1; end.
)");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.Diags.renderAll().find("not a variable"), std::string::npos);
}

TEST(Sema, ShadowingResolvesInnermost) {
  CompileResult R = compileMiniProc(R"(
program t; var x;
proc p(); var x;
begin x := 1; end;
begin call p(); end.
)");
  ASSERT_TRUE(R.succeeded()) << R.Diags.renderAll();
  const Program &P = *R.Program;
  // p's statement modifies p.x, not the global x.
  analysis::SideEffectAnalyzer An(P);
  EXPECT_EQ(An.setToString(An.gmod(ProcId(1))), "p.x");
  EXPECT_EQ(An.setToString(An.gmod(P.main())), "");
}

TEST(Sema, MutualRecursionAmongSiblings) {
  CompileResult R = compileMiniProc(R"(
program t; var g;
proc even(n); begin call odd(n); end;
proc odd(n);  begin call even(n); g := 1; end;
begin call even(g); end.
)");
  ASSERT_TRUE(R.succeeded()) << R.Diags.renderAll();
  analysis::SideEffectAnalyzer An(*R.Program);
  EXPECT_TRUE(An.gmod(R.Program->main()).test(0)); // g modified.
}

TEST(Sema, NestedProceduresAndUplevelAccess) {
  CompileResult R = compileMiniProc(R"(
program t; var g;
proc outer(a); var ov;
  proc inner();
  begin
    ov := 1;          // uplevel store to outer's local
    a := 2;           // uplevel store to outer's formal
  end;
begin
  call inner();
end;
begin
  call outer(g);
end.
)");
  ASSERT_TRUE(R.succeeded()) << R.Diags.renderAll();
  const Program &P = *R.Program;
  EXPECT_EQ(P.maxProcLevel(), 2u);
  analysis::SideEffectAnalyzer An(P);
  // outer's formal a is modified (in inner), so g ∈ GMOD(main).
  EXPECT_EQ(An.setToString(An.gmod(P.main())), "g");
}

TEST(Sema, ExpressionActualsDoNotBind) {
  CompileResult R = compileMiniProc(R"(
program t; var g;
proc p(a); begin a := 1; end;
begin call p(g + 0); end.
)");
  ASSERT_TRUE(R.succeeded()) << R.Diags.renderAll();
  analysis::SideEffectAnalyzer An(*R.Program);
  // The mod to a does not reach g: the actual is an expression.
  EXPECT_EQ(An.setToString(An.gmod(R.Program->main())), "");
}

TEST(Sema, FlowInsensitiveControlFlow) {
  CompileResult R = compileMiniProc(R"(
program t; var g, h, c;
begin
  if c then g := 1; else h := 2; end;
end.
)");
  ASSERT_TRUE(R.succeeded()) << R.Diags.renderAll();
  analysis::SideEffectAnalyzer An(*R.Program);
  // Both branches count.
  EXPECT_EQ(An.setToString(An.gmod(R.Program->main())), "g, h");
}

TEST(Frontend, LexErrorShortCircuits) {
  CompileResult R = compileMiniProc("program t; begin ? end.");
  EXPECT_FALSE(R.succeeded());
  EXPECT_TRUE(R.Diags.hasErrors());
}

} // namespace
