//===- tests/examples_test.cpp - The documented examples must run -------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

int run(const std::string &CommandLine, std::string &Output) {
  Output.clear();
  FILE *Pipe = popen((CommandLine + " 2>&1").c_str(), "r");
  if (!Pipe)
    return -1;
  std::array<char, 4096> Buf;
  std::size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Output.append(Buf.data(), N);
  int Status = pclose(Pipe);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

std::string example(const char *Name) {
  return std::string(IPSE_EXAMPLES_DIR) + "/" + Name;
}

TEST(Examples, Quickstart) {
  std::string Out;
  ASSERT_EQ(run(example("quickstart"), Out), 0);
  // The hand-computed results from the paper-style example.
  EXPECT_NE(Out.find("GMOD(p   ) = { h, p.b, p.x }"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("GUSE(p   ) = { g, p.a }"), std::string::npos);
  EXPECT_NE(Out.find("p.b    : modified"), std::string::npos);
  EXPECT_NE(Out.find("p.a    : not modified"), std::string::npos);
}

TEST(Examples, AnalyzeSourceBuiltinSample) {
  std::string Out;
  ASSERT_EQ(run(example("analyze_source"), Out), 0);
  EXPECT_NE(Out.find("Per-procedure summaries"), std::string::npos);
  EXPECT_NE(Out.find("GMOD = { depth, total, walk.local }"),
            std::string::npos)
      << Out;
}

TEST(Examples, AnalyzeSourceDot) {
  std::string Out;
  ASSERT_EQ(run(example("analyze_source") + " --dot", Out), 0);
  EXPECT_NE(Out.find("digraph callgraph"), std::string::npos);
  EXPECT_NE(Out.find("digraph binding"), std::string::npos);
}

TEST(Examples, ParallelLoops) {
  std::string Out;
  ASSERT_EQ(run(example("parallel_loops"), Out), 0);
  EXPECT_NE(Out.find("the loop is SERIAL"), std::string::npos);
  EXPECT_NE(Out.find("the loop is PARALLEL"), std::string::npos);
  EXPECT_NE(Out.find("sections intersect? no"), std::string::npos);
}

TEST(Examples, CompareAlgorithmsSmall) {
  std::string Out;
  ASSERT_EQ(run(example("compare_algorithms") + " 300", Out), 0);
  EXPECT_NE(Out.find("All algorithms agree."), std::string::npos) << Out;
  EXPECT_EQ(Out.find("MISMATCH"), std::string::npos);
}

TEST(Examples, SoundnessFuzzSmall) {
  std::string Out;
  ASSERT_EQ(run(example("soundness_fuzz") + " 10 100", Out), 0);
  EXPECT_NE(Out.find("0 violations"), std::string::npos) << Out;
}

} // namespace
