//===- tests/tenant_test.cpp - Multi-tenant service tests ---------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The sharded multi-tenant registry end to end: lifecycle (open / edit /
// query / close), admission control (name validation, procedure and
// queued-edit quotas), the tenant-aware wire protocol (attach routing and
// the single-program fallback), durable warm restart from the manifest,
// and — the load-bearing differential — a storm of concurrent clients
// across enough tenants to force LRU eviction and fault-in, where every
// tenant's every answer must be byte-identical to a single-program
// session fed the same script.  TSan runs this suite: the snapshot
// publish/pin protocol, the sharded queues, and the LRU bookkeeping are
// all cross-thread surfaces.
//
//===----------------------------------------------------------------------===//

#include "incremental/AnalysisSession.h"
#include "persist/Snapshot.h"
#include "support/Json.h"
#include "synth/ProgramGen.h"
#include "tenant/Protocol.h"
#include "tenant/TenantService.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace ipse;
using service::Response;
using service::ScriptCommand;
using tenant::TenantOptions;
using tenant::TenantService;

namespace {

/// A fresh, empty directory under the test temp root.
std::string freshDir(const std::string &Name) {
  std::string D = testing::TempDir() + "ipse_tenant_" + Name;
  std::filesystem::remove_all(D);
  std::filesystem::create_directories(D);
  return D;
}

/// The deterministic per-tenant script: every command below succeeds on
/// any generated program, so the tenant service and the single-program
/// oracle walk the same states.
std::vector<std::string> tenantEditScript(unsigned Rounds) {
  std::vector<std::string> Lines;
  for (unsigned R = 0; R != Rounds; ++R) {
    std::string S = std::to_string(R);
    Lines.push_back("add-global xg" + S);
    Lines.push_back("add-proc xq" + S + " main");
    Lines.push_back("add-stmt xq" + S);
    Lines.push_back("add-mod xq" + S + " 0 xg" + S);
  }
  return Lines;
}

std::vector<std::string> tenantQueryScript(unsigned Rounds) {
  std::vector<std::string> Lines = {"gmod main", "rmod p1", "guse p1"};
  for (unsigned R = 0; R != Rounds; ++R)
    Lines.push_back("gmod xq" + std::to_string(R));
  Lines.push_back("check");
  return Lines;
}

/// The oracle: one private AnalysisSession fed the same script a tenant
/// received, answering through the same evaluator the service uses.
class Oracle {
public:
  Oracle(const std::string &GenSpec, bool TrackUse = true) {
    service::ScriptCommand Gen =
        *service::parseScriptLine("gen " + GenSpec, 1);
    synth::ProgramGenConfig Cfg = service::parseGenSpec(Gen.Args, 1);
    incremental::SessionOptions SO;
    SO.TrackUse = TrackUse;
    Session = std::make_unique<incremental::AnalysisSession>(
        synth::generateProgram(Cfg), SO);
  }

  void apply(const std::string &Line) {
    service::applyEditCommand(*Session, *service::parseScriptLine(Line, 1));
  }

  std::string query(const std::string &Line) {
    Session->flush();
    service::SessionQueryTarget Target(*Session);
    return service::evalQueryCommand(Target, *service::parseScriptLine(Line, 1))
        .Text;
  }

private:
  std::unique_ptr<incremental::AnalysisSession> Session;
};

//===----------------------------------------------------------------------===//
// Lifecycle and admission control (one shard, in-memory).
//===----------------------------------------------------------------------===//

TEST(TenantLifecycle, OpenEditQueryClose) {
  TenantOptions Opts;
  Opts.Shards = 1;
  TenantService Svc(Opts);

  Response R = Svc.call("", "open acme procs=6 globals=4 seed=3");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(R.Result.find("opened 'acme'"), std::string::npos) << R.Result;
  EXPECT_TRUE(Svc.hasTenant("acme"));
  EXPECT_EQ(Svc.tenantCount(), 1u);
  EXPECT_EQ(Svc.residentCount(), 1u);

  // Double open is an error, not an overwrite.
  R = Svc.call("", "open acme procs=6 globals=4 seed=3");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("already open"), std::string::npos) << R.Error;

  // Edits bump the tenant's generation; queries answer from it.
  R = Svc.call("acme", "add-global fresh");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Generation, 1u);
  EXPECT_EQ(Svc.generation("acme"), 1u);
  R = Svc.call("acme", "gmod main");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Generation, 1u);
  EXPECT_NE(R.Result.find("GMOD(main)"), std::string::npos) << R.Result;
  R = Svc.call("acme", "check");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.CheckOk);

  // Unknown tenants and missing routing are answered, not dropped.
  R = Svc.call("ghost", "gmod main");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown tenant"), std::string::npos) << R.Error;
  R = Svc.call("", "gmod main");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("no tenant"), std::string::npos) << R.Error;

  // close ends the lifetime; queued-after semantics answer unknown.
  R = Svc.call("", "close acme");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(Svc.hasTenant("acme"));
  EXPECT_EQ(Svc.tenantCount(), 0u);
  R = Svc.call("acme", "gmod main");
  EXPECT_FALSE(R.Ok);

  tenant::TenantCounters C = Svc.counters();
  EXPECT_EQ(C.Opens, 1u);
  EXPECT_EQ(C.Closes, 1u);
  EXPECT_GE(C.Errors, 3u);
}

TEST(TenantLifecycle, NameValidationAndQuotas) {
  TenantOptions Opts;
  Opts.Shards = 1;
  Opts.MaxProcs = 5;
  TenantService Svc(Opts);

  // Hostile names are refused before they can become directory names.
  for (const char *Bad : {"", "a/b", "a b", "..", "x\n"}) {
    Response R = Svc.call("", std::string("open ") + Bad);
    EXPECT_FALSE(R.Ok) << "name: '" << Bad << "'";
  }

  // MaxProcs bounds the generated program (procs=8 means 9 with main).
  Response R = Svc.call("", "open big procs=8 globals=2 seed=1");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("quota"), std::string::npos) << R.Error;
  EXPECT_FALSE(Svc.hasTenant("big"));

  // At the cap, add-proc is refused at application time.
  R = Svc.call("", "open small procs=4 globals=2 seed=1");
  ASSERT_TRUE(R.Ok) << R.Error;
  R = Svc.call("small", "add-proc overflow main");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("max procedures"), std::string::npos) << R.Error;
  // The refusal changed nothing: the tenant still answers at gen 0.
  R = Svc.call("small", "check");
  EXPECT_TRUE(R.Ok && R.CheckOk) << R.Error;
  EXPECT_GE(Svc.counters().Rejected, 1u);
}

TEST(TenantLifecycle, EditQuotaShedsStormWithRetry) {
  TenantOptions Opts;
  Opts.Shards = 1;
  Opts.QueueCapacity = 512;
  Opts.MaxQueuedEdits = 4;
  TenantService Svc(Opts);
  ASSERT_TRUE(Svc.call("", "open victim procs=4 globals=2 seed=9").Ok);
  // Wedge the single shard behind a slow open (submitted async — a
  // blocking call would wait the solve out) so the storm below cannot
  // drain: every edit past the quota must be refused at submission.
  ScriptCommand Slow =
      *service::parseScriptLine("open slow procs=2000 globals=16 seed=1", 1);
  ASSERT_TRUE(Svc.trySubmit("", 999, Slow, [](Response) {}));

  ScriptCommand Edit = *service::parseScriptLine("add-global gq", 1);
  std::atomic<unsigned> Answered{0};
  unsigned Accepted = 0, Refused = 0;
  for (unsigned I = 0; I != 64; ++I) {
    bool Took = Svc.trySubmit("victim", I, Edit,
                              [&](Response) { Answered.fetch_add(1); });
    (Took ? Accepted : Refused) += 1;
  }
  EXPECT_GT(Refused, 0u);
  EXPECT_LE(Accepted, 64u - Refused);
  Svc.stop();
  EXPECT_EQ(Answered.load(), Accepted);
  EXPECT_GE(Svc.counters().Rejected, Refused);
}

TEST(TenantLifecycle, InMemoryModeIgnoresResidentCap) {
  TenantOptions Opts;
  Opts.Shards = 2;
  Opts.MaxResident = 1; // no DataDir: nothing to evict to
  TenantService Svc(Opts);
  for (const char *Name : {"a", "b", "c", "d"})
    ASSERT_TRUE(
        Svc.call("", std::string("open ") + Name + " procs=4 globals=2 seed=2")
            .Ok);
  EXPECT_EQ(Svc.residentCount(), 4u);
  EXPECT_EQ(Svc.counters().Evictions, 0u);
}

//===----------------------------------------------------------------------===//
// The protocol front end: attach routing and single-program fallback.
//===----------------------------------------------------------------------===//

/// Collects emitted response lines; shard threads and the caller both
/// emit, and tenant responses land out of order, so lookup is by id.
struct ResponseLog {
  std::mutex M;
  std::vector<std::string> Lines;

  void operator()(std::string Line) {
    std::lock_guard<std::mutex> G(M);
    Lines.push_back(std::move(Line));
  }

  /// The raw line answering request \p Id (waits for async responses).
  std::string waitLine(std::uint64_t Id) {
    for (unsigned Spin = 0; Spin != 200000; ++Spin) {
      {
        std::lock_guard<std::mutex> G(M);
        for (const std::string &L : Lines) {
          std::string Err;
          auto Obj = parseJsonObject(L, Err);
          if (Obj && Obj->getUInt("id") == Id)
            return L;
        }
      }
      std::this_thread::yield();
    }
    ADD_FAILURE() << "no response for id " << Id;
    return "{}";
  }

  JsonObject waitFor(std::uint64_t Id) {
    std::string Err;
    auto Obj = parseJsonObject(waitLine(Id), Err);
    EXPECT_TRUE(Obj) << Err;
    return Obj ? *Obj : JsonObject{};
  }
};

TEST(TenantProtocol, AttachRoutesAndFallbackAnswers) {
  TenantOptions Opts;
  Opts.Shards = 1;
  TenantService Svc(Opts);
  tenant::TenantConnection Conn;
  ResponseLog Log;
  auto Emit = [&](std::string Line) { Log(std::move(Line)); };

  tenant::handleTenantRequestLine(
      Svc, nullptr, Conn,
      R"({"id":1,"cmd":"open acme procs=4 globals=2 seed=5"})", Emit);
  tenant::handleTenantRequestLine(Svc, nullptr, Conn,
                                  R"({"id":2,"cmd":"attach acme"})", Emit);
  EXPECT_EQ(Conn.Attached, "acme");
  EXPECT_EQ(Log.waitFor(1).getBool("ok"), true);
  EXPECT_EQ(Log.waitFor(2).getBool("ok"), true);

  // Edits and queries route through the attachment.
  tenant::handleTenantRequestLine(Svc, nullptr, Conn,
                                  R"({"id":3,"cmd":"add-global fresh"})", Emit);
  JsonObject Obj = Log.waitFor(3);
  EXPECT_EQ(Obj.getBool("ok"), true);
  EXPECT_EQ(Obj.getUInt("gen"), 1u);
  tenant::handleTenantRequestLine(Svc, nullptr, Conn,
                                  R"({"id":4,"cmd":"gmod main"})", Emit);
  std::string Line = Log.waitLine(4);
  EXPECT_NE(Line.find("\"ok\":true"), std::string::npos) << Line;
  EXPECT_NE(Line.find("GMOD(main)"), std::string::npos) << Line;

  // An explicit "tenant" field overrides the attachment...
  tenant::handleTenantRequestLine(
      Svc, nullptr, Conn, R"({"id":5,"cmd":"gmod main","tenant":"ghost"})",
      Emit);
  Line = Log.waitLine(5);
  EXPECT_NE(Line.find("\"ok\":false"), std::string::npos) << Line;
  EXPECT_NE(Line.find("unknown tenant"), std::string::npos) << Line;

  // ...and attaching to an unknown tenant is refused, keeping the old one.
  tenant::handleTenantRequestLine(Svc, nullptr, Conn,
                                  R"({"id":6,"cmd":"attach ghost"})", Emit);
  EXPECT_EQ(Conn.Attached, "acme");
  EXPECT_EQ(Log.waitFor(6).getBool("ok"), false);

  // Unattached data requests with no single-program service get guidance.
  tenant::TenantConnection Fresh;
  tenant::handleTenantRequestLine(Svc, nullptr, Fresh,
                                  R"({"id":7,"cmd":"gmod main"})", Emit);
  Line = Log.waitLine(7);
  EXPECT_NE(Line.find("\"ok\":false"), std::string::npos) << Line;
  EXPECT_NE(Line.find("no tenant"), std::string::npos) << Line;
}

//===----------------------------------------------------------------------===//
// Durable mode: manifest warm restart.
//===----------------------------------------------------------------------===//

TEST(TenantDurable, WarmRestartFaultsInWithoutResolve) {
  std::string Dir = freshDir("restart");
  std::string PreGmod, PreCheck;
  {
    TenantOptions Opts;
    Opts.Shards = 2;
    Opts.DataDir = Dir;
    TenantService Svc(Opts);
    ASSERT_TRUE(Svc.call("", "open acme procs=8 globals=4 seed=11").Ok);
    ASSERT_TRUE(Svc.call("", "open beta procs=6 globals=3 seed=12").Ok);
    for (const std::string &L : tenantEditScript(3))
      ASSERT_TRUE(Svc.call("acme", L).Ok);
    Response R = Svc.call("acme", "gmod xq2");
    ASSERT_TRUE(R.Ok) << R.Error;
    PreGmod = R.Result;
    R = Svc.call("acme", "check");
    ASSERT_TRUE(R.Ok && R.CheckOk);
    PreCheck = R.Result;
    // Closed tenants must NOT come back after restart.
    ASSERT_TRUE(Svc.call("", "close beta").Ok);
    Svc.stop();
  }
  {
    TenantOptions Opts;
    Opts.Shards = 2;
    Opts.DataDir = Dir;
    TenantService Svc(Opts);
    EXPECT_TRUE(Svc.hasTenant("acme"));
    EXPECT_FALSE(Svc.hasTenant("beta"));
    EXPECT_EQ(Svc.tenantCount(), 1u);
    EXPECT_EQ(Svc.residentCount(), 0u); // lazy: fault in on first touch

    Response R = Svc.call("acme", "gmod xq2");
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Result, PreGmod);
    EXPECT_EQ(R.Generation, 12u); // 3 rounds x 4 edits, preserved
    R = Svc.call("acme", "check");
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.CheckOk);
    EXPECT_EQ(R.Result, PreCheck);
    EXPECT_EQ(Svc.counters().FaultIns, 1u);
    EXPECT_EQ(Svc.residentCount(), 1u);
  }
}

//===----------------------------------------------------------------------===//
// Demand-driven tenants: partial snapshots, solve-free fault-in.
//===----------------------------------------------------------------------===//

TEST(TenantDemand, DemandTenantsMatchSessionTenants) {
  TenantOptions Opts;
  Opts.Shards = 1;
  Opts.DemandFaultIn = true;
  TenantService Svc(Opts);

  ASSERT_TRUE(Svc.call("", "open acme procs=10 globals=5 seed=7").Ok);
  Oracle Model("procs=10 globals=5 seed=7");

  // Interleave edits with queries so partial snapshots republish between
  // invalidations; every answer must match the batch-backed oracle.
  for (const std::string &L : tenantEditScript(3)) {
    Response R = Svc.call("acme", L);
    ASSERT_TRUE(R.Ok) << L << ": " << R.Error;
    Model.apply(L);
    R = Svc.call("acme", "gmod main");
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Result, Model.query("gmod main")) << "after " << L;
  }
  for (const std::string &Q : tenantQueryScript(3)) {
    Response R = Svc.call("acme", Q);
    ASSERT_TRUE(R.Ok) << Q << ": " << R.Error;
    EXPECT_TRUE(R.CheckOk) << Q;
    EXPECT_EQ(R.Result, Model.query(Q)) << Q;
  }

  // The query verb answers from the demand region too.
  Response R = Svc.call("acme", "query main p1");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Result, Model.query("query main p1"));
}

TEST(TenantDemand, FaultInAnswersFromPartialRegion) {
  std::string Dir = freshDir("demand_restart");
  std::string PreGmod, PreQuery;
  {
    TenantOptions Opts;
    Opts.Shards = 2;
    Opts.DataDir = Dir;
    Opts.DemandFaultIn = true;
    TenantService Svc(Opts);
    ASSERT_TRUE(Svc.call("", "open acme procs=12 globals=5 seed=21").Ok);
    for (const std::string &L : tenantEditScript(2))
      ASSERT_TRUE(Svc.call("acme", L).Ok);
    Response R = Svc.call("acme", "gmod xq1");
    ASSERT_TRUE(R.Ok) << R.Error;
    PreGmod = R.Result;
    R = Svc.call("acme", "query main xq0");
    ASSERT_TRUE(R.Ok) << R.Error;
    PreQuery = R.Result;
    R = Svc.call("acme", "check");
    ASSERT_TRUE(R.Ok && R.CheckOk) << R.Error;
    Svc.stop();
  }
  {
    TenantOptions Opts;
    Opts.Shards = 2;
    Opts.DataDir = Dir;
    Opts.DemandFaultIn = true;
    TenantService Svc(Opts);
    EXPECT_TRUE(Svc.hasTenant("acme"));
    EXPECT_EQ(Svc.residentCount(), 0u); // lazy: fault in on first touch

    // The first query after fault-in solves only its region; the answer
    // still matches the pre-restart full-plane one byte for byte.
    Response R = Svc.call("acme", "gmod xq1");
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Result, PreGmod);
    EXPECT_EQ(R.Generation, 8u); // 2 rounds x 4 edits, preserved
    EXPECT_EQ(Svc.counters().FaultIns, 1u);
    R = Svc.call("acme", "query main xq0");
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Result, PreQuery);
    R = Svc.call("acme", "check");
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(R.CheckOk);
  }
}

TEST(TenantDemand, EvictionChurnKeepsDemandAnswersExact) {
  std::string Dir = freshDir("demand_churn");
  TenantOptions Opts;
  Opts.Shards = 2;
  Opts.DataDir = Dir;
  Opts.DemandFaultIn = true;
  Opts.MaxResident = 1; // two tenants through one seat: every switch evicts
  Opts.CompactWalRecords = 4;
  TenantService Svc(Opts);

  ASSERT_TRUE(Svc.call("", "open left procs=8 globals=4 seed=31").Ok);
  ASSERT_TRUE(Svc.call("", "open right procs=9 globals=4 seed=32").Ok);
  Oracle Left("procs=8 globals=4 seed=31"), Right("procs=9 globals=4 seed=32");

  for (unsigned Round = 0; Round != 3; ++Round) {
    std::string S = std::to_string(Round);
    for (auto [Name, Model] :
         {std::pair<const char *, Oracle *>{"left", &Left},
          std::pair<const char *, Oracle *>{"right", &Right}}) {
      Response R;
      for (const std::string &Edit :
           {"add-global cg" + S, "add-proc cq" + S + " main",
            "add-stmt cq" + S, "add-mod cq" + S + " 0 cg" + S}) {
        R = Svc.call(Name, Edit);
        ASSERT_TRUE(R.Ok) << Name << ": " << Edit << ": " << R.Error;
        Model->apply(Edit);
      }
      for (const std::string &Q :
           {std::string("gmod main"), std::string("query main p1"),
            std::string("guse p2"), std::string("gmod cq" + S)}) {
        R = Svc.call(Name, Q);
        ASSERT_TRUE(R.Ok) << Name << ": " << Q << ": " << R.Error;
        EXPECT_EQ(R.Result, Model->query(Q)) << Name << " round " << S;
      }
    }
  }
  EXPECT_GT(Svc.counters().Evictions, 0u);
  EXPECT_GT(Svc.counters().FaultIns, 0u);
}

//===----------------------------------------------------------------------===//
// The differential storm: many tenants, many clients, forced eviction.
//===----------------------------------------------------------------------===//

TEST(TenantStorm, ConcurrentTenantsMatchOracleUnderEviction) {
  constexpr unsigned NumTenants = 64;
  constexpr unsigned NumClients = 8;
  constexpr unsigned Rounds = 2;

  std::string Dir = freshDir("storm");
  TenantOptions Opts;
  Opts.Shards = 4;
  Opts.DataDir = Dir;
  Opts.MaxResident = 8; // 64 tenants through 8 seats: constant churn
  Opts.CompactWalRecords = 4;
  TenantService Svc(Opts);

  auto NameOf = [](unsigned I) { return "t" + std::to_string(I); };
  auto SpecOf = [](unsigned I) {
    return "procs=" + std::to_string(4 + I % 5) + " globals=3 seed=" +
           std::to_string(100 + I);
  };

  const std::vector<std::string> Edits = tenantEditScript(Rounds);
  const std::vector<std::string> Queries = tenantQueryScript(Rounds);

  // Each client owns a disjoint slice of tenants, so per-tenant command
  // order is deterministic while the service sees all slices at once.
  std::vector<std::string> Failures(NumClients);
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C != NumClients; ++C) {
    Clients.emplace_back([&, C] {
      auto Fail = [&](const std::string &Msg) {
        if (Failures[C].empty())
          Failures[C] = Msg;
      };
      for (unsigned I = C; I < NumTenants; I += NumClients) {
        std::string Name = NameOf(I);
        Response R = Svc.call("", "open " + Name + " " + SpecOf(I));
        if (!R.Ok)
          return Fail(Name + ": open: " + R.Error);
        Oracle Model(SpecOf(I));
        // Interleave edits and queries so snapshots publish mid-script,
        // with eviction racing the whole time.
        for (const std::string &L : Edits) {
          R = Svc.call(Name, L);
          if (!R.Ok)
            return Fail(Name + ": " + L + ": " + R.Error);
          Model.apply(L);
          R = Svc.call(Name, "gmod main");
          if (!R.Ok)
            return Fail(Name + ": gmod main: " + R.Error);
          if (R.Result != Model.query("gmod main"))
            return Fail(Name + ": gmod main diverged after " + L + ": " +
                        R.Result);
        }
        for (const std::string &Q : Queries) {
          R = Svc.call(Name, Q);
          if (!R.Ok)
            return Fail(Name + ": " + Q + ": " + R.Error);
          if (!R.CheckOk)
            return Fail(Name + ": check failed");
          std::string Want = Model.query(Q);
          if (R.Result != Want)
            return Fail(Name + ": " + Q + ": got '" + R.Result + "' want '" +
                        Want + "'");
        }
      }
    });
  }
  for (std::thread &T : Clients)
    T.join();
  for (const std::string &F : Failures)
    EXPECT_EQ(F, "");

  tenant::TenantCounters C = Svc.counters();
  EXPECT_EQ(Svc.tenantCount(), NumTenants);
  EXPECT_GT(C.Evictions, 0u) << "cap 8 over 64 tenants must evict";
  EXPECT_GT(C.FaultIns, 0u) << "evicted tenants were queried again";
  EXPECT_EQ(C.Opens, NumTenants);

  // Quiesced: the resident population respects the cap (in-flight evict
  // posts may still be draining, so allow the enforcement loop's slack).
  Svc.stop();
  EXPECT_LE(Svc.residentCount(), Opts.MaxResident + Opts.Shards);

  // Every tenant survived in the manifest.
  std::string Err;
  std::vector<std::uint8_t> Bytes;
  ASSERT_TRUE(persist::readFileBytes(Dir + "/tenants.json", Bytes, Err)) << Err;
  std::string Manifest(Bytes.begin(), Bytes.end());
  for (unsigned I = 0; I != NumTenants; ++I)
    EXPECT_NE(Manifest.find("\"" + NameOf(I) + "\""), std::string::npos) << I;
}

} // namespace
