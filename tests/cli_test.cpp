//===- tests/cli_test.cpp - ipse-cli end-to-end tests -------------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Drives the built ipse-cli binary as a subprocess against the corpus:
// exit codes and key output lines per subcommand.
//
//===----------------------------------------------------------------------===//

#include "observe/Trace.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

/// Runs a command, captures stdout, returns the exit code.
int run(const std::string &CommandLine, std::string &Output) {
  Output.clear();
  FILE *Pipe = popen((CommandLine + " 2>/dev/null").c_str(), "r");
  if (!Pipe)
    return -1;
  std::array<char, 4096> Buf;
  std::size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Output.append(Buf.data(), N);
  int Status = pclose(Pipe);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

std::string cli() { return std::string(IPSE_CLI_PATH); }
std::string corpus(const char *Name) {
  return std::string(IPSE_SOURCE_DIR) + "/examples/corpus/" + Name;
}

TEST(Cli, NoArgsShowsUsage) {
  std::string Out;
  EXPECT_EQ(run(cli(), Out), 2);
}

TEST(Cli, UnknownCommandShowsUsage) {
  std::string Out;
  EXPECT_EQ(run(cli() + " frobnicate", Out), 2);
}

TEST(Cli, ReportOnCorpus) {
  std::string Out;
  ASSERT_EQ(run(cli() + " report " + corpus("swap_chain.mp"), Out), 0);
  EXPECT_NE(Out.find("GMOD = { rotate.p, rotate.q, rotate.r, tmp }"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("GUSE"), std::string::npos);
}

TEST(Cli, ReportNoUseAndRMod) {
  std::string Out;
  ASSERT_EQ(run(cli() + " report --rmod --no-use " +
                    corpus("swap_chain.mp"),
                Out),
            0);
  EXPECT_EQ(Out.find("GUSE"), std::string::npos);
  EXPECT_NE(Out.find("dst: RMOD"), std::string::npos) << Out;
}

TEST(Cli, ReportOnMissingFileFails) {
  std::string Out;
  EXPECT_EQ(run(cli() + " report /nonexistent.mp", Out), 1);
}

TEST(Cli, ReportOnBadSourceFails) {
  // Feed it a file that exists but is not MiniProc.
  std::string Out;
  EXPECT_EQ(run(cli() + " report " + std::string(IPSE_SOURCE_DIR) +
                    "/README.md",
                Out),
            1);
}

TEST(Cli, DotOutputs) {
  std::string Out;
  ASSERT_EQ(run(cli() + " dot " + corpus("evaluator.mp"), Out), 0);
  EXPECT_NE(Out.find("digraph callgraph"), std::string::npos);
  ASSERT_EQ(run(cli() + " dot --beta " + corpus("swap_chain.mp"), Out), 0);
  EXPECT_NE(Out.find("digraph binding"), std::string::npos);
  EXPECT_NE(Out.find("swap.x"), std::string::npos);
}

TEST(Cli, Stats) {
  std::string Out;
  ASSERT_EQ(run(cli() + " stats " + corpus("tower.mp"), Out), 0);
  EXPECT_NE(Out.find("nesting depth dP  3"), std::string::npos) << Out;
  EXPECT_NE(Out.find("procedures        4"), std::string::npos) << Out;
}

TEST(Cli, CheckAgreesOnEveryCorpusFile) {
  for (const char *Name : {"banking.mp", "swap_chain.mp", "accumulator.mp",
                           "evaluator.mp", "tower.mp", "shadowing.mp",
                           "ackermann.mp"}) {
    std::string Out;
    EXPECT_EQ(run(cli() + " check " + corpus(Name), Out), 0) << Name;
    EXPECT_NE(Out.find("all agree"), std::string::npos) << Name << Out;
  }
}

TEST(Cli, GenerateEmitsCompilableSource) {
  std::string Out;
  ASSERT_EQ(run(cli() + " generate --seed 5 --procs 12 --depth 3", Out), 0);
  EXPECT_NE(Out.find("program main;"), std::string::npos);
  // Deterministic: same seed, same bytes.
  std::string Out2;
  ASSERT_EQ(run(cli() + " generate --seed 5 --procs 12 --depth 3", Out2), 0);
  EXPECT_EQ(Out, Out2);
  // Different seed, different program.
  ASSERT_EQ(run(cli() + " generate --seed 6 --procs 12 --depth 3", Out2), 0);
  EXPECT_NE(Out, Out2);
}

TEST(Cli, RoundtripPreservesShape) {
  for (const char *Name : {"banking.mp", "accumulator.mp", "tower.mp"}) {
    std::string Out;
    EXPECT_EQ(run(cli() + " roundtrip " + corpus(Name), Out), 0) << Name;
    EXPECT_NE(Out.find("shape preserved"), std::string::npos) << Out;
  }
}

TEST(Cli, SessionScriptOnStdin) {
  std::string Script = "load " + corpus("accumulator.mp") +
                       "\n"
                       "gmod process\n"
                       "add-mod add 0 count\n"
                       "check\n"
                       "rm-call process 2\n"
                       "check\n"
                       "stats\n";
  std::string Out;
  ASSERT_EQ(run("printf '%s' '" + Script + "' | " + cli() + " session -", Out),
            0)
      << Out;
  EXPECT_NE(Out.find("GMOD(process) = {"), std::string::npos) << Out;
  EXPECT_NE(Out.find("check: OK"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("MISMATCH"), std::string::npos) << Out;
  // One effect-only flush (add-mod) and one structural flush (rm-call).
  EXPECT_NE(Out.find("effect-only 1"), std::string::npos) << Out;
}

TEST(Cli, SessionOnGeneratedProgram) {
  std::string Script = "gen procs=10 globals=5 seed=3 depth=2\n"
                       "check\n"
                       "add-global zz_wide\n"
                       "check\n";
  std::string Out;
  ASSERT_EQ(run("printf '%s' '" + Script + "' | " + cli() + " session -", Out),
            0)
      << Out;
  EXPECT_EQ(Out.find("MISMATCH"), std::string::npos) << Out;
}

TEST(Cli, SessionRejectsBadScript) {
  std::string Out;
  EXPECT_EQ(run("printf 'gmod nope\\n' | " + cli() + " session -", Out), 1);
}

TEST(Cli, ReportEnginesAreByteIdentical) {
  std::string Seq, Par, Sess;
  ASSERT_EQ(run(cli() + " report --rmod " + corpus("tower.mp"), Seq), 0);
  ASSERT_EQ(run(cli() + " report --rmod --parallel=2 " + corpus("tower.mp"),
                Par),
            0);
  ASSERT_EQ(run(cli() + " report --rmod --engine=session " +
                    corpus("tower.mp"),
                Sess),
            0);
  EXPECT_EQ(Seq, Par);
  EXPECT_EQ(Seq, Sess);
}

TEST(Cli, ReportProfileAppendsPhaseTable) {
  for (const char *Flags : {"--profile", "--profile --parallel=2",
                            "--profile --engine=session"}) {
    std::string Out;
    ASSERT_EQ(run(cli() + " report " + Flags + " " + corpus("tower.mp"), Out),
              0)
        << Flags;
    // The report itself is unchanged and the profile block follows it.
    EXPECT_NE(Out.find("call sites:"), std::string::npos) << Out;
    std::size_t At = Out.find("profile:");
    ASSERT_NE(At, std::string::npos) << Flags << Out;
    if (ipse::observe::enabled()) {
      EXPECT_NE(Out.find("parse", At), std::string::npos) << Flags << Out;
      EXPECT_NE(Out.find("report", At), std::string::npos) << Flags << Out;
      EXPECT_NE(Out.find("bv_ops", At), std::string::npos) << Flags << Out;
    }
  }
}

TEST(Cli, ReportTraceOutStreamsJsonLines) {
  std::string Path = testing::TempDir() + "/ipse_cli_trace.jsonl";
  std::string Out;
  ASSERT_EQ(run(cli() + " report --trace-out=" + Path + " " +
                    corpus("tower.mp"),
                Out),
            0);
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string First;
  std::getline(In, First);
  if (ipse::observe::enabled()) {
    EXPECT_EQ(First.find("{\"span\":\""), 0u) << First;
  } else {
    EXPECT_TRUE(First.empty());
  }
  std::remove(Path.c_str());
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::size_t countOf(const std::string &Hay, const std::string &Needle) {
  std::size_t N = 0;
  for (std::size_t At = Hay.find(Needle); At != std::string::npos;
       At = Hay.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

TEST(Cli, ReportTraceFormatChromeIsOneWellFormedDocument) {
  std::string Path = testing::TempDir() + "/ipse_cli_trace.chrome.json";
  std::string Out;
  // Four analysis threads interleave their spans into one file.
  ASSERT_EQ(run(cli() + " report --engine=parallel --parallel=4"
                        " --trace-out=" + Path + " --trace-format=chrome " +
                    corpus("tower.mp"),
                Out),
            0);
  std::string Doc = slurp(Path);
  std::string Error;
  ASSERT_TRUE(ipse::validateJsonDocument(Doc, Error))
      << Error << "\n" << Doc;
  if (ipse::observe::enabled()) {
    std::size_t Events = countOf(Doc, "{\"name\":\"");
    ASSERT_GT(Events, 0u) << Doc;
    // Every event is a complete ("X") slice carrying a thread id, and no
    // event has a negative duration.
    EXPECT_EQ(countOf(Doc, "\"ph\":\"X\""), Events) << Doc;
    EXPECT_EQ(countOf(Doc, "\"tid\":"), Events) << Doc;
    EXPECT_EQ(countOf(Doc, "\"dur\":-"), 0u) << Doc;
    EXPECT_EQ(countOf(Doc, "\"ts\":-"), 0u) << Doc;
  } else {
    EXPECT_EQ(countOf(Doc, "{\"name\":\""), 0u) << Doc;
  }
  std::remove(Path.c_str());
}

TEST(Cli, ReportUnknownTraceFormatFails) {
  std::string Out;
  EXPECT_EQ(run(cli() + " report --trace-out=/dev/null"
                        " --trace-format=bogus " +
                    corpus("tower.mp"),
                Out),
            2);
}

TEST(Cli, ReportTraceOutUnwritableFails) {
  std::string Out;
  EXPECT_EQ(run(cli() + " report --trace-out=/nonexistent-dir/t.jsonl " +
                    corpus("tower.mp"),
                Out),
            1);
}

TEST(Cli, ReportUnknownEngineFails) {
  std::string Out;
  EXPECT_EQ(run(cli() + " report --engine=quantum " + corpus("tower.mp"),
                Out),
            2);
}

TEST(Cli, SessionMetricsVerb) {
  std::string Out;
  ASSERT_EQ(run("printf 'gen procs=6 globals=3 seed=2\\nmetrics\\n' | " +
                    cli() + " session -",
                Out),
            0)
      << Out;
  EXPECT_NE(Out.find("\"counters\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"histograms\""), std::string::npos) << Out;
}

TEST(Cli, SessionProfile) {
  std::string Out;
  ASSERT_EQ(run("printf 'gen procs=6 globals=3 seed=2\\ngmod p0\\n' | " +
                    cli() + " session --profile -",
                Out),
            0)
      << Out;
  EXPECT_NE(Out.find("profile:"), std::string::npos) << Out;
  if (ipse::observe::enabled()) {
    EXPECT_NE(Out.find("flush.full-rebuild"), std::string::npos) << Out;
  }
}

TEST(Cli, ServeOverStdio) {
  // The serve front end speaks newline-delimited JSON over stdio; one
  // response per request, correlated by id.
  std::string Requests = R"({"id":1,"cmd":"gmod main"}\n)"
                         R"({"id":2,"cmd":"add-global srv_g"}\n)"
                         R"({"id":3,"cmd":"check"}\n)";
  std::string Out;
  ASSERT_EQ(run("printf '" + Requests + "' | " + cli() +
                    " serve --gen procs=8,globals=4,seed=5 --workers 2",
                Out),
            0)
      << Out;
  EXPECT_NE(Out.find("\"result\":\"GMOD(main) = {"), std::string::npos) << Out;
  EXPECT_NE(Out.find("check: OK"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("\"ok\":false"), std::string::npos) << Out;
}

TEST(Cli, ServeReportsScriptErrorsPerRequest) {
  std::string Out;
  ASSERT_EQ(run("printf '{\"id\":1,\"cmd\":\"gmod nope\"}\n' | " + cli() +
                    " serve --gen procs=4,globals=2,seed=1",
                Out),
            0)
      << Out;
  EXPECT_NE(Out.find("unknown procedure"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"ok\":false"), std::string::npos) << Out;
}

TEST(Cli, ServeNeedsAProgramSource) {
  std::string Out;
  EXPECT_EQ(run("printf '' | " + cli() + " serve", Out), 2);
}

TEST(Cli, ServeClientMetricsDumpOverTcpWithChromeTrace) {
  // The full observability walkthrough: serve over TCP with a Chrome
  // trace sink, drive it with the line client, scrape it with
  // metrics-dump, shut it down by closing its stdin — then check the
  // trace attributes every span to its request.
  std::string Dir = testing::TempDir();
  std::string ErrFile = Dir + "/ipse_serve_err.txt";
  std::string Trace = Dir + "/ipse_serve_trace.chrome.json";
  std::string Done = Dir + "/ipse_serve_done";
  std::string Script = Dir + "/ipse_serve_script.txt";
  {
    std::ofstream S(Script);
    S << "gmod main\n"
      << "add-global tcp_trace_g\n"
      << "check\n";
  }
  std::remove(Done.c_str());
  std::remove(ErrFile.c_str());

  // The serve process reads stdin until EOF; feed it from a loop that
  // ends when the done-file appears, so the server outlives both client
  // runs and stops cleanly afterwards.
  std::string Cmd =
      "( while [ ! -e " + Done + " ]; do sleep 0.1; done ) | " + cli() +
      " serve --gen procs=8,globals=4,seed=5 --port 0 --workers 2"
      " --trace-out=" + Trace + " --trace-format=chrome 2>" + ErrFile +
      " & SRV=$!; "
      "for I in $(seq 1 100); do"
      "  grep -q 'serving on' " + ErrFile + " 2>/dev/null && break;"
      "  sleep 0.1; "
      "done; "
      "PORT=$(sed -n 's/.*127\\.0\\.0\\.1:\\([0-9]*\\).*/\\1/p' " + ErrFile +
      "); " +
      cli() + " client --port $PORT " + Script + " && " +
      cli() + " metrics-dump --port $PORT; RC=$?; "
      "touch " + Done + "; wait $SRV; exit $RC";
  std::string Out;
  ASSERT_EQ(run(Cmd, Out), 0) << Out << "\nserver stderr:\n"
                              << slurp(ErrFile);

  // Client responses: answers, the committed edit, and per-request trace
  // ids assigned by the client ("c1", "c2", ...).
  EXPECT_NE(Out.find("\"result\":\"GMOD(main) = {"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("check: OK"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("\"ok\":false"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"trace\":\"c1\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"trace\":\"c2\""), std::string::npos) << Out;
  // metrics-dump appended Prometheus text after the response lines.
  EXPECT_NE(Out.find("# TYPE"), std::string::npos) << Out;
  EXPECT_NE(Out.find("ipse_service_read_lat_us"), std::string::npos) << Out;

  // The trace file: one well-formed Chrome Trace Event document whose
  // service spans carry the client's trace ids.
  std::string Doc = slurp(Trace);
  std::string Error;
  ASSERT_TRUE(ipse::validateJsonDocument(Doc, Error))
      << Error << "\n" << Doc;
  if (ipse::observe::enabled()) {
    EXPECT_NE(Doc.find("\"name\":\"service.query\""), std::string::npos)
        << Doc;
    EXPECT_NE(Doc.find("\"name\":\"service.flush\""), std::string::npos)
        << Doc;
    EXPECT_NE(Doc.find("\"trace\":\"c1\""), std::string::npos) << Doc;
    // The edit (request c2) committed generation 1; its flush span says so.
    EXPECT_NE(Doc.find("\"trace\":\"c2\",\"gen\":1"), std::string::npos)
        << Doc;
    EXPECT_EQ(countOf(Doc, "\"dur\":-"), 0u) << Doc;
  }
  std::remove(Trace.c_str());
  std::remove(Script.c_str());
  std::remove(ErrFile.c_str());
  std::remove(Done.c_str());
}

TEST(Cli, SaveInspectLoadRoundTrip) {
  std::string Snap = testing::TempDir() + "/cli_roundtrip.ipsesnap";
  std::string Out;
  ASSERT_EQ(run(cli() + " save --program " + corpus("tower.mp") + " " + Snap,
                Out),
            0)
      << Out;
  EXPECT_NE(Out.find("wrote " + Snap), std::string::npos) << Out;
  EXPECT_NE(Out.find("use-tracking on"), std::string::npos) << Out;

  ASSERT_EQ(run(cli() + " inspect-snapshot " + Snap, Out), 0) << Out;
  EXPECT_NE(Out.find("header      ok"), std::string::npos) << Out;
  for (const char *Tag : {"PROG", "GRPH", "PLNS"})
    EXPECT_NE(Out.find(Tag), std::string::npos) << Tag << "\n" << Out;
  EXPECT_EQ(Out.find("BAD"), std::string::npos) << Out;

  ASSERT_EQ(run(cli() + " load " + Snap, Out), 0) << Out;
  EXPECT_NE(Out.find("generation 0"), std::string::npos) << Out;
  EXPECT_NE(Out.find("full rebuilds since load: 0"), std::string::npos)
      << Out;

  // The loaded planes must answer identically to a cold solve: the
  // report rendered from the snapshot matches `report` on the source.
  std::string Cold, Warm;
  ASSERT_EQ(run(cli() + " report " + corpus("tower.mp"), Cold), 0);
  ASSERT_EQ(run(cli() + " load --report " + Snap, Warm), 0);
  EXPECT_NE(Warm.find(Cold), std::string::npos)
      << "---- cold ----\n" << Cold << "---- warm ----\n" << Warm;
  std::remove(Snap.c_str());
}

TEST(Cli, InspectSnapshotFlagsCorruptionAndLoadRefusesIt) {
  std::string Snap = testing::TempDir() + "/cli_corrupt.ipsesnap";
  std::string Out;
  ASSERT_EQ(run(cli() + " save --gen procs=12,globals=4,seed=3 " + Snap, Out),
            0)
      << Out;

  // Flip one payload byte near the end of the file (the planes section).
  {
    std::string Bytes = slurp(Snap);
    ASSERT_GT(Bytes.size(), 64u);
    Bytes[Bytes.size() - 2] ^= 0x20;
    std::ofstream F(Snap, std::ios::binary | std::ios::trunc);
    F.write(Bytes.data(), std::streamsize(Bytes.size()));
  }
  EXPECT_EQ(run(cli() + " inspect-snapshot " + Snap, Out), 1) << Out;
  EXPECT_NE(Out.find("BAD"), std::string::npos) << Out;
  EXPECT_NE(Out.find("header      ok"), std::string::npos) << Out;
  EXPECT_EQ(run(cli() + " load " + Snap, Out), 1) << Out;
  std::remove(Snap.c_str());
}

TEST(Cli, ServeDataDirSurvivesKillNine) {
  // The crash-recovery walkthrough, end to end through the binary: serve
  // with --data-dir, commit edits (each response means the WAL record is
  // fsync'd), SIGKILL the server mid-traffic, restart from the same
  // directory, and require the answers and generation to come back warm.
  std::string Dir = testing::TempDir() + "/ipse_cli_store";
  std::string Out1 = testing::TempDir() + "/ipse_kill9_out1.txt";
  std::string Err2 = testing::TempDir() + "/ipse_kill9_err2.txt";
  std::string Done = testing::TempDir() + "/ipse_kill9_done";
  std::string Out;
  run("rm -rf " + Dir + " && rm -f " + Out1 + " " + Err2 + " " + Done, Out);

  std::string Requests = R"({"id":1,"cmd":"add-global kill9_g"}\n)"
                         R"({"id":2,"cmd":"add-stmt main"}\n)"
                         R"({"id":3,"cmd":"add-mod main 0 kill9_g"}\n)";
  // Hold stdin open after the requests so EOF cannot trigger the *clean*
  // shutdown path: the server must die by SIGKILL with its WAL tail
  // unfolded. An edit's response follows the WAL fsync, so once the
  // output shows generation 3 all three edits are durable.
  std::string Cmd =
      "( printf '" + Requests + "'; while [ ! -e " + Done +
      " ]; do sleep 0.1; done ) | " + cli() +
      " serve --gen procs=8,globals=4,seed=5 --workers 2 --data-dir " + Dir +
      " >" + Out1 + " 2>/dev/null & SRV=$!; "
      "for I in $(seq 1 100); do"
      "  grep -q '\"gen\":3' " + Out1 + " 2>/dev/null && break;"
      "  sleep 0.1; "
      "done; "
      "kill -9 $SRV; touch " + Done + "; wait $SRV 2>/dev/null; exit 0";
  ASSERT_EQ(run(Cmd, Out), 0) << Out;
  std::string FirstRun = slurp(Out1);
  ASSERT_NE(FirstRun.find("\"gen\":3"), std::string::npos) << FirstRun;

  // Restart from the store alone: no --gen, no --program. The recovery
  // banner goes to stderr; the re-queried GMOD must include the edit
  // committed before the kill.
  std::string Requests2 = R"({"id":1,"cmd":"gmod main"}\n)";
  // The subshell keeps run()'s own trailing stderr redirect from
  // overriding the capture into Err2.
  ASSERT_EQ(run("( printf '" + Requests2 + "' | " + cli() +
                    " serve --data-dir " + Dir + " 2>" + Err2 + " )",
                Out),
            0)
      << Out << slurp(Err2);
  EXPECT_NE(Out.find("kill9_g"), std::string::npos) << Out;
  std::string Banner = slurp(Err2);
  EXPECT_NE(Banner.find("recovered '" + Dir + "' at generation 3"),
            std::string::npos)
      << Banner;
  EXPECT_NE(Banner.find("stopped at generation 3"), std::string::npos)
      << Banner;
  run("rm -rf " + Dir + " && rm -f " + Out1 + " " + Err2 + " " + Done, Out);
}

TEST(Cli, ServeTenantsSurviveKillNine) {
  // The multi-tenant crash walkthrough: serve --tenants --data-dir, open
  // two tenants, storm both with edits, SIGKILL the server once the last
  // acks (each ack follows the tenant's WAL fsync) are visible, restart
  // from the directory, and require the manifest to re-register both and
  // every answer to come back from a warm fault-in — no re-solve.
  std::string Dir = testing::TempDir() + "/ipse_cli_tenants";
  std::string Out1 = testing::TempDir() + "/ipse_tkill9_out1.txt";
  std::string Err2 = testing::TempDir() + "/ipse_tkill9_err2.txt";
  std::string Done = testing::TempDir() + "/ipse_tkill9_done";
  std::string Out;
  run("rm -rf " + Dir + " && rm -f " + Out1 + " " + Err2 + " " + Done, Out);

  std::string Requests =
      R"({"id":100,"cmd":"open acme procs=8 globals=4 seed=5"}\n)"
      R"({"id":200,"cmd":"open beta procs=6 globals=3 seed=9"}\n)"
      R"({"id":101,"cmd":"add-global kill9_a","tenant":"acme"}\n)"
      R"({"id":201,"cmd":"add-global kill9_b","tenant":"beta"}\n)"
      R"({"id":102,"cmd":"add-stmt main","tenant":"acme"}\n)"
      R"({"id":202,"cmd":"add-stmt main","tenant":"beta"}\n)"
      R"({"id":103,"cmd":"add-mod main 0 kill9_a","tenant":"acme"}\n)"
      R"({"id":203,"cmd":"add-mod main 0 kill9_b","tenant":"beta"}\n)";
  std::string Cmd =
      "( printf '" + Requests + "'; while [ ! -e " + Done +
      " ]; do sleep 0.1; done ) | " + cli() +
      " serve --tenants=2 --data-dir " + Dir +
      " >" + Out1 + " 2>/dev/null & SRV=$!; "
      "for I in $(seq 1 100); do"
      "  grep -q '\"id\":103' " + Out1 + " 2>/dev/null &&"
      "  grep -q '\"id\":203' " + Out1 + " 2>/dev/null && break;"
      "  sleep 0.1; "
      "done; "
      "kill -9 $SRV; touch " + Done + "; wait $SRV 2>/dev/null; exit 0";
  ASSERT_EQ(run(Cmd, Out), 0) << Out;
  std::string FirstRun = slurp(Out1);
  ASSERT_NE(FirstRun.find("\"id\":103"), std::string::npos) << FirstRun;
  ASSERT_NE(FirstRun.find("\"id\":203"), std::string::npos) << FirstRun;
  EXPECT_EQ(FirstRun.find("\"ok\":false"), std::string::npos) << FirstRun;

  // Restart: the manifest re-registers both tenants (evicted); the first
  // query per tenant faults its session in from snapshot + WAL tail.
  std::string Requests2 =
      R"({"id":1,"cmd":"gmod main","tenant":"acme"}\n)"
      R"({"id":2,"cmd":"check","tenant":"acme"}\n)"
      R"({"id":3,"cmd":"gmod main","tenant":"beta"}\n)"
      R"({"id":4,"cmd":"check","tenant":"beta"}\n)";
  ASSERT_EQ(run("( printf '" + Requests2 + "' | " + cli() +
                    " serve --tenants=2 --data-dir " + Dir + " 2>" + Err2 +
                    " )",
                Out),
            0)
      << Out << slurp(Err2);
  EXPECT_NE(Out.find("kill9_a"), std::string::npos) << Out;
  EXPECT_NE(Out.find("kill9_b"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("\"ok\":false"), std::string::npos) << Out;
  EXPECT_EQ(countOf(Out, "check: OK"), 2u) << Out;
  std::string Banner = slurp(Err2);
  EXPECT_NE(Banner.find("tenants: 2 registered in '" + Dir + "'"),
            std::string::npos)
      << Banner;
  EXPECT_NE(Banner.find("tenants stopped; 2 in manifest"), std::string::npos)
      << Banner;
  run("rm -rf " + Dir + " && rm -f " + Out1 + " " + Err2 + " " + Done, Out);
}

TEST(Cli, ServeSigquitWritesFlightDump) {
  // The flight-recorder crash-dump path, end to end through the binary:
  // serve with --data-dir, answer one query (so the rings hold real
  // events), SIGQUIT the server, and require a Perfetto-loadable
  // flight-<pid>.json in the data directory.
  std::string Dir = testing::TempDir() + "/ipse_cli_flight";
  std::string Out1 = testing::TempDir() + "/ipse_sigquit_out1.txt";
  std::string Done = testing::TempDir() + "/ipse_sigquit_done";
  std::string Out;
  run("rm -rf " + Dir + " && rm -f " + Out1 + " " + Done, Out);

  std::string Requests = R"({"id":1,"cmd":"gmod main"}\n)";
  std::string Cmd =
      "( printf '" + Requests + "'; while [ ! -e " + Done +
      " ]; do sleep 0.1; done ) | " + cli() +
      " serve --gen procs=8,globals=4,seed=5 --data-dir " + Dir +
      " >" + Out1 + " 2>/dev/null & SRV=$!; "
      "for I in $(seq 1 100); do"
      "  grep -q '\"id\":1' " + Out1 + " 2>/dev/null && break;"
      "  sleep 0.1; "
      "done; "
      "kill -QUIT $SRV; "
      "for I in $(seq 1 100); do"
      "  ls " + Dir + "/flight-*.json >/dev/null 2>&1 && break;"
      "  sleep 0.1; "
      "done; "
      "touch " + Done + "; wait $SRV 2>/dev/null; "
      "cat " + Dir + "/flight-*.json";
  ASSERT_EQ(run(Cmd, Out), 0) << Out << "\nserver out:\n" << slurp(Out1);
  ASSERT_FALSE(Out.empty());
  std::string Error;
  ASSERT_TRUE(ipse::validateJsonDocument(Out, Error)) << Error << "\n" << Out;
  if (ipse::observe::enabled()) {
    // The dump holds the pre-crash history: the query span the server
    // just answered, attributed to the flight category.
    EXPECT_NE(Out.find("\"cat\":\"flight\""), std::string::npos) << Out;
    EXPECT_NE(Out.find("service.query"), std::string::npos) << Out;
  }
  run("rm -rf " + Dir + " && rm -f " + Out1 + " " + Done, Out);
}

TEST(Cli, ServeTenantsExportLabeledPromSeries) {
  // Per-tenant labeled metrics end to end: a tenants server answers a
  // query for each of two tenants, then `metrics --format=prom` must
  // show distinct {tenant="..."} series for both.  The feeder polls the
  // output file so the metrics request only goes in after both query
  // responses are out (the scrape would otherwise race the queries).
  std::string Dir = testing::TempDir() + "/ipse_cli_promlabels";
  std::string Out1 = testing::TempDir() + "/ipse_promlabels_out1.txt";
  std::string Done = testing::TempDir() + "/ipse_promlabels_done";
  std::string Out;
  run("rm -rf " + Dir + " && rm -f " + Out1 + " " + Done, Out);

  std::string Requests =
      R"({"id":1,"cmd":"open acme procs=8 globals=4 seed=5"}\n)"
      R"({"id":2,"cmd":"open beta procs=6 globals=3 seed=9"}\n)"
      R"({"id":3,"cmd":"gmod main","tenant":"acme"}\n)"
      R"({"id":4,"cmd":"gmod main","tenant":"beta"}\n)";
  std::string MetricsReq = R"({"id":9,"cmd":"metrics --format=prom"}\n)";
  std::string Cmd =
      "( printf '" + Requests + "'; "
      "  for I in $(seq 1 100); do"
      "    grep -q '\"id\":3' " + Out1 + " 2>/dev/null &&"
      "    grep -q '\"id\":4' " + Out1 + " 2>/dev/null && break;"
      "    sleep 0.1; "
      "  done; "
      "  printf '" + MetricsReq + "'; "
      "  while [ ! -e " + Done + " ]; do sleep 0.1; done ) | " + cli() +
      " serve --tenants=2 --data-dir " + Dir +
      " >" + Out1 + " 2>/dev/null & SRV=$!; "
      "for I in $(seq 1 100); do"
      "  grep -q '\"id\":9' " + Out1 + " 2>/dev/null && break;"
      "  sleep 0.1; "
      "done; "
      "touch " + Done + "; wait $SRV 2>/dev/null; exit 0";
  ASSERT_EQ(run(Cmd, Out), 0) << Out;
  std::string Resp = slurp(Out1);
  ASSERT_NE(Resp.find("\"id\":9"), std::string::npos) << Resp;
  EXPECT_EQ(Resp.find("\"ok\":false"), std::string::npos) << Resp;
  // The prom text rides inside a JSON string field, so its quotes arrive
  // escaped: ipse_tenant_queries{tenant=\"acme\"} ...
  EXPECT_NE(Resp.find("ipse_tenant_queries{tenant=\\\"acme\\\"} "),
            std::string::npos)
      << Resp;
  EXPECT_NE(Resp.find("ipse_tenant_queries{tenant=\\\"beta\\\"} "),
            std::string::npos)
      << Resp;
  EXPECT_NE(Resp.find("ipse_tenant_resident{tenant=\\\"acme\\\"} 1"),
            std::string::npos)
      << Resp;
  EXPECT_NE(Resp.find("ipse_tenant_resident{tenant=\\\"beta\\\"} 1"),
            std::string::npos)
      << Resp;
  run("rm -rf " + Dir + " && rm -f " + Out1 + " " + Done, Out);
}

TEST(Cli, DebugDumpOverTcpIsAChromeTraceDocument) {
  // The live introspection path: serve over TCP, answer a query, then
  // `debug-dump --port` must print the recorder's Chrome Trace array.
  std::string Dir = testing::TempDir();
  std::string ErrFile = Dir + "/ipse_debugdump_err.txt";
  std::string Done = Dir + "/ipse_debugdump_done";
  std::string Script = Dir + "/ipse_debugdump_script.txt";
  {
    std::ofstream S(Script);
    S << "gmod main\n";
  }
  std::remove(Done.c_str());
  std::remove(ErrFile.c_str());

  std::string Cmd =
      "( while [ ! -e " + Done + " ]; do sleep 0.1; done ) | " + cli() +
      " serve --gen procs=8,globals=4,seed=5 --port 0 --workers 2 2>" +
      ErrFile + " & SRV=$!; "
      "for I in $(seq 1 100); do"
      "  grep -q 'serving on' " + ErrFile + " 2>/dev/null && break;"
      "  sleep 0.1; "
      "done; "
      "PORT=$(sed -n 's/.*127\\.0\\.0\\.1:\\([0-9]*\\).*/\\1/p' " + ErrFile +
      "); " +
      cli() + " client --port $PORT " + Script + " >/dev/null && " +
      cli() + " debug-dump --port $PORT; RC=$?; "
      "touch " + Done + "; wait $SRV; exit $RC";
  std::string Out;
  ASSERT_EQ(run(Cmd, Out), 0) << Out << "\nserver stderr:\n"
                              << slurp(ErrFile);
  std::string Error;
  ASSERT_TRUE(ipse::validateJsonDocument(Out, Error)) << Error << "\n" << Out;
  if (ipse::observe::enabled()) {
    EXPECT_NE(Out.find("\"cat\":\"flight\""), std::string::npos) << Out;
    EXPECT_NE(Out.find("service.query"), std::string::npos) << Out;
  }
  std::remove(Script.c_str());
  std::remove(ErrFile.c_str());
  std::remove(Done.c_str());
}

} // namespace
