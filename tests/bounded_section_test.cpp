//===- tests/bounded_section_test.cpp - Range-section lattice laws ------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The bounded-range lattice is validated two ways: unit tests for the
// interesting cases, and a concrete-model property sweep — constant-only
// ranges denote explicit index sets over a small grid, against which meet
// (must cover the union), contains, and mayIntersect (must be exact for
// constants) are checked exhaustively.
//
//===----------------------------------------------------------------------===//

#include "analysis/BoundedSection.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace ipse;
using namespace ipse::analysis;

namespace {

const ir::VarId SymI(7), SymJ(8);

TEST(DimRange, MeetHullsConstants) {
  DimRange P3 = DimRange::point(Subscript::constant(3));
  DimRange P7 = DimRange::point(Subscript::constant(7));
  DimRange Hull = P3.meet(P7);
  ASSERT_TRUE(Hull.isInterval());
  EXPECT_EQ(Hull.lo(), 3);
  EXPECT_EQ(Hull.hi(), 7);
}

TEST(DimRange, MeetOfIntervals) {
  DimRange A = DimRange::interval(1, 4);
  DimRange B = DimRange::interval(3, 9);
  DimRange Hull = A.meet(B);
  EXPECT_EQ(Hull, DimRange::interval(1, 9));
  // Disjoint intervals still hull (convex approximation).
  EXPECT_EQ(DimRange::interval(1, 2).meet(DimRange::interval(8, 9)),
            DimRange::interval(1, 9));
}

TEST(DimRange, SymbolsWidenOnMix) {
  DimRange PI = DimRange::point(Subscript::symbol(SymI));
  EXPECT_EQ(PI.meet(PI), PI); // Idempotent on equal symbols.
  EXPECT_TRUE(PI.meet(DimRange::point(Subscript::symbol(SymJ))).isFull());
  EXPECT_TRUE(PI.meet(DimRange::point(Subscript::constant(1))).isFull());
  EXPECT_TRUE(PI.meet(DimRange::interval(1, 2)).isFull());
}

TEST(DimRange, Containment) {
  DimRange Iv = DimRange::interval(2, 5);
  EXPECT_TRUE(Iv.contains(DimRange::point(Subscript::constant(2))));
  EXPECT_TRUE(Iv.contains(DimRange::point(Subscript::constant(5))));
  EXPECT_FALSE(Iv.contains(DimRange::point(Subscript::constant(6))));
  EXPECT_TRUE(Iv.contains(DimRange::interval(3, 4)));
  EXPECT_FALSE(Iv.contains(DimRange::interval(3, 6)));
  EXPECT_FALSE(Iv.contains(DimRange::full()));
  EXPECT_TRUE(DimRange::full().contains(Iv));
  // A symbolic point is only contained in itself and Full.
  DimRange PI = DimRange::point(Subscript::symbol(SymI));
  EXPECT_FALSE(Iv.contains(PI));
  EXPECT_TRUE(DimRange::full().contains(PI));
  EXPECT_TRUE(PI.contains(PI));
}

TEST(DimRange, Overlap) {
  EXPECT_TRUE(DimRange::interval(1, 4).mayOverlap(DimRange::interval(4, 9)));
  EXPECT_FALSE(
      DimRange::interval(1, 4).mayOverlap(DimRange::interval(5, 9)));
  EXPECT_TRUE(DimRange::interval(1, 4).mayOverlap(
      DimRange::point(Subscript::constant(2))));
  EXPECT_FALSE(DimRange::interval(1, 4).mayOverlap(
      DimRange::point(Subscript::constant(5))));
  // Symbols are conservative.
  EXPECT_TRUE(DimRange::interval(1, 4).mayOverlap(
      DimRange::point(Subscript::symbol(SymI))));
}

TEST(BoundedSection, StridedBlocksAreRepresentable) {
  // A(1:8, j): impossible in the Figure 3 lattice, natural here.
  BoundedSection Block = BoundedSection::make2(
      DimRange::interval(1, 8), DimRange::point(Subscript::symbol(SymJ)));
  EXPECT_EQ(Block.toString(), "(1:8,v8)");
  EXPECT_FALSE(Block.isWhole());

  BoundedSection OtherBlock = BoundedSection::make2(
      DimRange::interval(9, 16), DimRange::point(Subscript::symbol(SymJ)));
  // Distinct row blocks never intersect: a finer answer than rows/columns.
  EXPECT_FALSE(Block.mayIntersect(OtherBlock));
  // Their meet is the hull block, still not the whole array.
  BoundedSection Hull = Block.meet(OtherBlock);
  EXPECT_EQ(Hull.dim(0), DimRange::interval(1, 16));
  EXPECT_FALSE(Hull.isWhole());
}

TEST(BoundedSection, EmbedsFigure3Exactly) {
  RegularSection RowJ =
      RegularSection::section2(Subscript::symbol(SymJ), Subscript::star());
  BoundedSection B = BoundedSection::fromRegularSection(RowJ);
  EXPECT_EQ(B.toString(), "(v8,*)");
  EXPECT_TRUE(BoundedSection::fromRegularSection(RegularSection::none(2))
                  .isNone());
  EXPECT_TRUE(BoundedSection::fromRegularSection(RegularSection::whole(2))
                  .isWhole());
}

TEST(BoundedSection, NoneIsIdentity) {
  BoundedSection None = BoundedSection::none(2);
  BoundedSection Block = BoundedSection::make2(DimRange::interval(1, 3),
                                               DimRange::full());
  EXPECT_EQ(None.meet(Block), Block);
  EXPECT_EQ(Block.meet(None), Block);
  EXPECT_TRUE(Block.contains(None));
  EXPECT_FALSE(None.contains(Block));
  EXPECT_FALSE(None.mayIntersect(Block));
}

//===----------------------------------------------------------------------===//
// Concrete-model property sweep: constant-only ranges over a small grid.
//===----------------------------------------------------------------------===//

/// All constant-only DimRanges over indices 0..5 (points and intervals),
/// plus Full.
std::vector<DimRange> allConstantRanges() {
  std::vector<DimRange> Out;
  for (int I = 0; I <= 5; ++I)
    Out.push_back(DimRange::point(Subscript::constant(I)));
  for (int Lo = 0; Lo <= 5; ++Lo)
    for (int Hi = Lo; Hi <= 5; ++Hi)
      Out.push_back(DimRange::interval(Lo, Hi));
  Out.push_back(DimRange::full());
  return Out;
}

/// The concrete index set a constant-only range denotes over 0..5 (Full
/// denotes everything).
std::set<int> denote(const DimRange &R) {
  std::set<int> S;
  for (int I = 0; I <= 5; ++I) {
    DimRange P = DimRange::point(Subscript::constant(I));
    if (R.contains(P))
      S.insert(I);
  }
  return S;
}

TEST(DimRangeModel, MeetCoversUnionAndIsLattice) {
  std::vector<DimRange> All = allConstantRanges();
  for (const DimRange &A : All)
    for (const DimRange &B : All) {
      DimRange M = A.meet(B);
      // Lattice laws.
      EXPECT_EQ(M, B.meet(A));
      EXPECT_EQ(A.meet(A), A);
      // Coverage: the meet denotes a superset of the union.
      std::set<int> DA = denote(A), DB = denote(B), DM = denote(M);
      for (int X : DA)
        EXPECT_TRUE(DM.count(X));
      for (int X : DB)
        EXPECT_TRUE(DM.count(X));
      // And the meet is below both operands in the order.
      EXPECT_TRUE(M.contains(A));
      EXPECT_TRUE(M.contains(B));
    }
}

TEST(DimRangeModel, MeetIsAssociative) {
  std::vector<DimRange> All = allConstantRanges();
  // Sampled triple check (full cube is large but fast enough at stride 3).
  for (std::size_t I = 0; I < All.size(); I += 3)
    for (std::size_t J = 1; J < All.size(); J += 3)
      for (std::size_t K = 2; K < All.size(); K += 3)
        EXPECT_EQ(All[I].meet(All[J]).meet(All[K]),
                  All[I].meet(All[J].meet(All[K])));
}

TEST(DimRangeModel, OverlapIsExactForConstants) {
  std::vector<DimRange> All = allConstantRanges();
  for (const DimRange &A : All)
    for (const DimRange &B : All) {
      std::set<int> DA = denote(A), DB = denote(B);
      bool Concrete = false;
      for (int X : DA)
        Concrete |= DB.count(X) != 0;
      // Full ranges denote more than 0..5, so restrict exactness to
      // non-Full operands; Full must simply report overlap.
      if (A.isFull() || B.isFull())
        EXPECT_TRUE(A.mayOverlap(B));
      else
        EXPECT_EQ(A.mayOverlap(B), Concrete)
            << A.toString() << " vs " << B.toString();
    }
}

TEST(DimRangeModel, ContainsAgreesWithDenotations) {
  std::vector<DimRange> All = allConstantRanges();
  for (const DimRange &A : All)
    for (const DimRange &B : All) {
      if (A.isFull() || B.isFull())
        continue;
      std::set<int> DA = denote(A), DB = denote(B);
      bool Concrete = true;
      for (int X : DB)
        Concrete &= DA.count(X) != 0;
      EXPECT_EQ(A.contains(B), Concrete)
          << A.toString() << " vs " << B.toString();
    }
}

} // namespace
