//===- tests/service_test.cpp - Concurrent analysis service tests -------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Covers the src/service stack bottom-up: the JSON codec, the shared
// script driver (including the EditGen -> toScriptLine -> applyEditCommand
// round trip that lets synthetic edit streams drive the service by name),
// snapshot capture, the concurrent service itself (MVCC semantics,
// batching + dedup, deterministic backpressure), the TCP front end, and a
// randomized multi-threaded stress run whose every response is re-checked
// bit-for-bit against the published snapshot that answered it.  The
// stress test is the ThreadSanitizer workload in CI.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "incremental/AnalysisSession.h"
#include "incremental/Edit.h"
#include "observe/Trace.h"
#include "ir/Printer.h"
#include "service/AnalysisService.h"
#include "service/AnalysisSnapshot.h"
#include "support/Json.h"
#include "service/ScriptDriver.h"
#include "service/Server.h"
#include "support/Rng.h"
#include "synth/EditGen.h"
#include "synth/ProgramGen.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

using namespace ipse;
using namespace ipse::service;

namespace {

ir::Program makeProgram(unsigned Procs = 12, unsigned Globals = 6,
                        std::uint64_t Seed = 7) {
  return synth::makeFortranStyleProgram(Procs, Globals, 3, Seed);
}

//===----------------------------------------------------------------------===//
// JSON codec.
//===----------------------------------------------------------------------===//

TEST(Json, ParsesFlatRequestEnvelope) {
  std::string Err;
  auto Obj = parseJsonObject(
      R"({"id":42,"cmd":"gmod main","flag":true,"extra":[1,{"x":2}]})", Err);
  ASSERT_TRUE(Obj.has_value()) << Err;
  EXPECT_EQ(Obj->getUInt("id"), 42u);
  EXPECT_EQ(Obj->getString("cmd"), "gmod main");
  EXPECT_EQ(Obj->getBool("flag"), true);
  EXPECT_TRUE(Obj->has("extra")); // Skipped, not interpreted.
  EXPECT_EQ(Obj->getString("id"), std::nullopt); // Wrong type.
  EXPECT_EQ(Obj->getUInt("missing"), std::nullopt);
}

TEST(Json, UnescapesStrings) {
  std::string Err;
  auto Obj = parseJsonObject(R"({"s":"a\"b\\c\nA"})", Err);
  ASSERT_TRUE(Obj.has_value()) << Err;
  EXPECT_EQ(Obj->getString("s"), "a\"b\\c\nA");
}

TEST(Json, RejectsMalformedInput) {
  std::string Err;
  EXPECT_FALSE(parseJsonObject("not json", Err).has_value());
  EXPECT_FALSE(parseJsonObject(R"({"a":1)", Err).has_value());
  EXPECT_FALSE(parseJsonObject(R"({"a"})", Err).has_value());
}

TEST(Json, WriterRoundTripsThroughParser) {
  JsonWriter W;
  W.field("id", std::uint64_t(7));
  W.field("ok", true);
  W.field("result", "GMOD(p) = {a \"quoted\"\nnewline}");
  W.fieldRaw("nested", "{\"x\":1}");
  std::string Text = W.finish();
  std::string Err;
  auto Obj = parseJsonObject(Text, Err);
  ASSERT_TRUE(Obj.has_value()) << Err << " in " << Text;
  EXPECT_EQ(Obj->getUInt("id"), 7u);
  EXPECT_EQ(Obj->getBool("ok"), true);
  EXPECT_EQ(Obj->getString("result"), "GMOD(p) = {a \"quoted\"\nnewline}");
}

//===----------------------------------------------------------------------===//
// Script driver.
//===----------------------------------------------------------------------===//

TEST(ScriptDriver, ParsesAndClassifiesCommands) {
  auto Cmd = parseScriptLine("  add-mod  p 0 x  # trailing comment", 3);
  ASSERT_TRUE(Cmd.has_value());
  EXPECT_EQ(Cmd->Kind, ScriptCommand::Op::AddMod);
  ASSERT_EQ(Cmd->Args.size(), 3u);
  EXPECT_EQ(Cmd->Args[0], "p");
  EXPECT_EQ(Cmd->LineNo, 3u);
  EXPECT_TRUE(isEditCommand(Cmd->Kind));
  EXPECT_FALSE(isQueryCommand(Cmd->Kind));

  EXPECT_FALSE(parseScriptLine("   # only a comment", 1).has_value());
  EXPECT_FALSE(parseScriptLine("", 1).has_value());

  auto Query = parseScriptLine("gmod main", 1);
  ASSERT_TRUE(Query.has_value());
  EXPECT_TRUE(isQueryCommand(Query->Kind));
  EXPECT_FALSE(isEditCommand(Query->Kind));

  EXPECT_THROW(parseScriptLine("frobnicate x", 9), ScriptError);
  EXPECT_THROW(parseScriptLine("gmod", 9), ScriptError);      // Arity.
  EXPECT_THROW(parseScriptLine("add-call p 0", 9), ScriptError);
  try {
    parseScriptLine("gmod a b", 17);
    FAIL() << "expected ScriptError";
  } catch (const ScriptError &E) {
    EXPECT_EQ(E.LineNo, 17u);
    EXPECT_EQ(E.Message, "'gmod' expects 1 operand(s)");
  }
}

TEST(ScriptDriver, SessionQueriesMatchDirectSessionCalls) {
  incremental::AnalysisSession S(makeProgram());
  SessionQueryTarget Target(S);
  const ir::Program &P = S.program();
  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    std::string Name = P.name(ir::ProcId(I));
    QueryResult G = evalQueryCommand(Target, *parseScriptLine("gmod " + Name, 1));
    EXPECT_EQ(G.Text, "GMOD(" + Name + ") = {" +
                          setToString(P, S.gmod(ir::ProcId(I))) + "}");
  }
  QueryResult C = evalQueryCommand(Target, *parseScriptLine("check", 1));
  EXPECT_TRUE(C.CheckOk);
  EXPECT_NE(C.Text.find("check: OK"), std::string::npos);
}

TEST(ScriptDriver, EditScriptLinesReplayAgainstASecondSession) {
  // EditGen stream applied directly to one session; rendered through
  // toScriptLine and replayed by name onto another.  Both must agree —
  // this is the contract that lets the stress/bench drivers feed the
  // service synthetic edits over the wire protocol.
  incremental::AnalysisSession Direct(makeProgram(10, 5, 3));
  incremental::AnalysisSession Replayed(makeProgram(10, 5, 3));
  synth::EditGenConfig Cfg;
  Cfg.Seed = 99;
  synth::EditGen Gen(Cfg);
  for (unsigned I = 0; I != 60; ++I) {
    std::optional<incremental::Edit> E = Gen.next(Direct.program());
    if (!E)
      break;
    std::string Line = incremental::toScriptLine(Direct.program(), *E);
    incremental::applyEdit(Direct, *E);
    std::optional<ScriptCommand> Cmd = parseScriptLine(Line, I + 1);
    ASSERT_TRUE(Cmd.has_value()) << Line;
    ASSERT_NO_THROW(applyEditCommand(Replayed, *Cmd)) << Line;
  }
  const ir::Program &P = Direct.program();
  ASSERT_EQ(P.numProcs(), Replayed.program().numProcs());
  ASSERT_EQ(P.numVars(), Replayed.program().numVars());
  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    EXPECT_EQ(Direct.gmod(ir::ProcId(I)), Replayed.gmod(ir::ProcId(I)))
        << P.name(ir::ProcId(I));
    EXPECT_EQ(Direct.guse(ir::ProcId(I)), Replayed.guse(ir::ProcId(I)))
        << P.name(ir::ProcId(I));
  }
}

TEST(ScriptDriver, ResolutionErrorsNameTheProblem) {
  incremental::AnalysisSession S(makeProgram());
  try {
    applyEditCommand(S, *parseScriptLine("add-local nope x", 5));
    FAIL() << "expected ScriptError";
  } catch (const ScriptError &E) {
    EXPECT_EQ(E.Message, "unknown procedure 'nope'");
  }
  SessionQueryTarget Target(S);
  EXPECT_THROW(evalQueryCommand(Target, *parseScriptLine("gmod nope", 1)),
               ScriptError);
}

//===----------------------------------------------------------------------===//
// Snapshot capture.
//===----------------------------------------------------------------------===//

TEST(AnalysisSnapshot, MatchesBatchAnalyzersAndLiveSession) {
  incremental::AnalysisSession S(makeProgram());
  auto Snap = AnalysisSnapshot::capture(S, S.generation());
  const ir::Program &P = Snap->program();

  analysis::SideEffectAnalyzer Mod(P);
  analysis::AnalyzerOptions UseOpts;
  UseOpts.Kind = analysis::EffectKind::Use;
  analysis::SideEffectAnalyzer Use(P, UseOpts);

  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    ir::ProcId Proc(I);
    EXPECT_EQ(Snap->gmod(Proc), Mod.gmod(Proc));
    EXPECT_EQ(Snap->guse(Proc), Use.gmod(Proc));
    for (ir::VarId F : P.proc(Proc).Formals) {
      EXPECT_EQ(Snap->rmodContains(F, analysis::EffectKind::Mod),
                Mod.rmodContains(F));
      EXPECT_EQ(Snap->rmodContains(F, analysis::EffectKind::Use),
                Use.rmodContains(F));
    }
  }
}

TEST(AnalysisSnapshot, IsImmuneToLaterSessionEdits) {
  incremental::AnalysisSession S(makeProgram());
  auto Snap = AnalysisSnapshot::capture(S, S.generation());
  std::string Before =
      setToString(Snap->program(), Snap->gmod(S.program().main()));
  std::size_t ProcsBefore = Snap->program().numProcs();

  // Mutate the session heavily; the snapshot must not move.
  ir::VarId G = S.addGlobal("snap_g");
  ir::ProcId NewProc = S.addProc("snap_p", S.program().main());
  ir::StmtId St = S.addStmt(NewProc);
  S.addMod(St, G);
  S.flush();

  EXPECT_EQ(Snap->program().numProcs(), ProcsBefore);
  EXPECT_EQ(setToString(Snap->program(), Snap->gmod(Snap->program().main())),
            Before);
}

//===----------------------------------------------------------------------===//
// The concurrent service.
//===----------------------------------------------------------------------===//

TEST(AnalysisService, AnswersQueriesAndAppliesEdits) {
  ServiceOptions Opts;
  Opts.Workers = 2;
  AnalysisService Svc(makeProgram(), Opts);

  incremental::AnalysisSession Ref(makeProgram());
  std::string MainName = Ref.program().name(Ref.program().main());

  Response R = Svc.call("gmod " + MainName);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Generation, 0u);
  EXPECT_EQ(R.Result, "GMOD(" + MainName + ") = {" +
                          setToString(Ref.program(),
                                      Ref.gmod(Ref.program().main())) +
                          "}");

  Response E = Svc.call("add-global svc_g");
  ASSERT_TRUE(E.Ok) << E.Error;
  EXPECT_EQ(E.Generation, 1u);
  EXPECT_EQ(Svc.generation(), 1u);

  Response C = Svc.call("check");
  ASSERT_TRUE(C.Ok) << C.Error;
  EXPECT_TRUE(C.CheckOk) << C.Result;
  EXPECT_EQ(C.Generation, 1u);

  Response Bad = Svc.call("gmod nope");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_EQ(Bad.Error, "unknown procedure 'nope'");

  Response Parse = Svc.call("definitely-not-a-command");
  EXPECT_FALSE(Parse.Ok);

  Response NotServed = Svc.call("load x.mp");
  EXPECT_FALSE(NotServed.Ok);
  EXPECT_EQ(NotServed.Error, "command not available while serving");

  Response Stats = Svc.call("stats");
  ASSERT_TRUE(Stats.Ok);
  EXPECT_TRUE(Stats.ResultIsJson);
  std::string Err;
  auto Obj = parseJsonObject(Stats.Result, Err);
  ASSERT_TRUE(Obj.has_value()) << Err << " in " << Stats.Result;
  EXPECT_EQ(Obj->getUInt("gen"), 1u);
  EXPECT_EQ(Obj->getUInt("edits"), 1u);

  ServiceCounters Cnt = Svc.counters();
  EXPECT_EQ(Cnt.Edits, 1u);
  EXPECT_GE(Cnt.Errors, 3u);
  EXPECT_EQ(Cnt.Published, 1u);
}

TEST(AnalysisService, PublishesSnapshotPerCommittedBatch) {
  ServiceOptions Opts;
  Opts.Workers = 1;
  AnalysisService Svc(makeProgram(), Opts);
  std::mutex M;
  std::vector<std::uint64_t> Gens;
  Svc.setPublishHook([&](std::shared_ptr<const AnalysisSnapshot> S) {
    std::lock_guard<std::mutex> Lock(M);
    Gens.push_back(S->generation());
  });
  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(Svc.call("add-global pub_g" + std::to_string(I)).Ok);
  std::lock_guard<std::mutex> Lock(M);
  // Serial blocking edits: one snapshot each, strictly increasing.
  ASSERT_EQ(Gens.size(), 3u);
  EXPECT_TRUE(std::is_sorted(Gens.begin(), Gens.end()));
  EXPECT_EQ(Gens.back(), Svc.generation());
}

TEST(AnalysisService, BackpressureIsDeterministicWithNoWorkers) {
  ServiceOptions Opts;
  Opts.Workers = 0; // Nobody drains the read queue.
  Opts.QueueCapacity = 4;
  AnalysisService Svc(makeProgram(), Opts);

  auto Cmd = *parseScriptLine("gmod main", 0);
  unsigned Accepted = 0, Refused = 0;
  for (unsigned I = 0; I != 6; ++I) {
    if (Svc.trySubmit(I, Cmd, [](Response) {}))
      ++Accepted;
    else
      ++Refused;
  }
  EXPECT_EQ(Accepted, 4u);
  EXPECT_EQ(Refused, 2u);
  EXPECT_EQ(Svc.counters().Rejected, 2u);
  // The write path is independent: edits still commit while reads are
  // saturated.
  Response E = Svc.call("add-global bp_g");
  EXPECT_TRUE(E.Ok);
  EXPECT_EQ(E.Generation, 1u);
}

TEST(AnalysisService, BurstOfIdenticalQueriesIsDeduplicated) {
  ServiceOptions Opts;
  Opts.Workers = 1; // Single worker: batch boundaries are controllable.
  Opts.MaxBatch = 64;
  AnalysisService Svc(makeProgram(), Opts);

  // Block the worker inside the first response callback, queue a burst of
  // identical queries behind it, then release: the worker's next wakeup
  // drains the whole burst as one batch and evaluates it once.
  std::mutex M;
  std::condition_variable Cv;
  bool Ready = false, Release = false;
  ASSERT_TRUE(Svc.trySubmit(0, *parseScriptLine("gmod main", 0),
                            [&](Response) {
                              std::unique_lock<std::mutex> Lock(M);
                              Ready = true;
                              Cv.notify_all();
                              Cv.wait(Lock, [&] { return Release; });
                            }));
  {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Ready; });
  }

  constexpr unsigned Burst = 10;
  std::atomic<unsigned> Answered{0};
  std::vector<std::string> Results(Burst);
  for (unsigned I = 0; I != Burst; ++I)
    ASSERT_TRUE(Svc.trySubmit(I + 1, *parseScriptLine("rmod main", 0),
                              [&, I](Response R) {
                                Results[I] = R.Result;
                                Answered.fetch_add(1);
                              }));
  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  Cv.notify_all();

  // Drain: a final blocking call is FIFO-ordered behind the burst.
  ASSERT_TRUE(Svc.call("gmod main").Ok);
  EXPECT_EQ(Answered.load(), Burst);
  for (const std::string &R : Results)
    EXPECT_EQ(R, Results[0]);

  ServiceCounters Cnt = Svc.counters();
  EXPECT_EQ(Cnt.DedupSaved, Burst - 1);
}

//===----------------------------------------------------------------------===//
// Request-scoped tracing through the service.
//===----------------------------------------------------------------------===//

/// Copies each span's identity out of the live SpanRecord (Tags is only
/// valid during onSpan).  Worker and writer threads both deliver here.
struct ServiceTagSink : observe::TraceSink {
  struct Row {
    std::string Name;
    std::string TraceId;
    std::uint64_t Generation;
  };
  std::mutex M;
  std::vector<Row> Rows;
  void onSpan(const observe::SpanRecord &R) override {
    std::lock_guard<std::mutex> Lock(M);
    Rows.push_back({R.Name, R.Tags ? R.Tags->TraceId : std::string(),
                    R.Tags ? R.Tags->Generation : 0});
  }
  std::vector<Row> named(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(M);
    std::vector<Row> Out;
    for (const Row &R : Rows)
      if (R.Name == Name)
        Out.push_back(R);
    return Out;
  }
};

TEST(AnalysisService, EchoesTraceIdsAndTagsSpans) {
  ServiceTagSink Sink;
  ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.Sink = &Sink;
  AnalysisService Svc(makeProgram(), Opts);

  Response Q = Svc.call("gmod main", "req-q");
  ASSERT_TRUE(Q.Ok) << Q.Error;
  EXPECT_EQ(Q.TraceId, "req-q");

  Response E = Svc.call("add-global trace_g", "req-e");
  ASSERT_TRUE(E.Ok) << E.Error;
  EXPECT_EQ(E.TraceId, "req-e");
  EXPECT_EQ(E.Generation, 1u);

  // Inline verbs and inline errors echo too.
  EXPECT_EQ(Svc.call("stats", "req-s").TraceId, "req-s");
  EXPECT_EQ(Svc.call("load x.mp", "req-x").TraceId, "req-x");
  // No trace supplied: none invented at this layer.
  EXPECT_EQ(Svc.call("gmod main").TraceId, "");

  if (!observe::enabled())
    return;
  // The query's evaluation span carries its trace id and the snapshot
  // generation that answered it (0: before the edit).
  std::vector<ServiceTagSink::Row> Queries = Sink.named("service.query");
  bool SawQuery = false;
  for (const ServiceTagSink::Row &R : Queries)
    if (R.TraceId == "req-q") {
      SawQuery = true;
      EXPECT_EQ(R.Generation, 0u);
    }
  EXPECT_TRUE(SawQuery);
  // The flush span carries the editing request's id and the generation it
  // produced.
  std::vector<ServiceTagSink::Row> Flushes = Sink.named("service.flush");
  ASSERT_FALSE(Flushes.empty());
  EXPECT_EQ(Flushes[0].TraceId, "req-e");
  EXPECT_EQ(Flushes[0].Generation, 1u);
}

TEST(AnalysisService, MetricsVerbSpeaksJsonAndPrometheus) {
  ServiceOptions Opts;
  Opts.Workers = 1;
  AnalysisService Svc(makeProgram(), Opts);
  // Touch the latency paths so the exported histograms are non-trivial.
  ASSERT_TRUE(Svc.call("gmod main").Ok);
  ASSERT_TRUE(Svc.call("add-global prom_g").Ok);

  Response Json = Svc.call("metrics");
  ASSERT_TRUE(Json.Ok) << Json.Error;
  EXPECT_TRUE(Json.ResultIsJson);
  std::string Err;
  ASSERT_TRUE(parseJsonObject(Json.Result, Err).has_value())
      << Err << " in " << Json.Result;

  Response Prom = Svc.call("metrics --format=prom");
  ASSERT_TRUE(Prom.Ok) << Prom.Error;
  // Prometheus text is a plain string payload, not a JSON object.
  EXPECT_FALSE(Prom.ResultIsJson);
  EXPECT_NE(Prom.Result.find("# TYPE"), std::string::npos) << Prom.Result;
  EXPECT_NE(Prom.Result.find("ipse_service_read_lat_us_bucket"),
            std::string::npos)
      << Prom.Result;
  EXPECT_NE(Prom.Result.find("ipse_service_write_lat_us_count"),
            std::string::npos)
      << Prom.Result;
}

//===----------------------------------------------------------------------===//
// TCP front end.
//===----------------------------------------------------------------------===//

TEST(Server, RenderedResponsesParseBack) {
  Response R;
  R.Id = 9;
  R.Ok = true;
  R.Generation = 4;
  R.Result = "GMOD(p) = {a}";
  std::string Line = renderResponse(R);
  std::string Err;
  auto Obj = parseJsonObject(Line, Err);
  ASSERT_TRUE(Obj.has_value()) << Err;
  EXPECT_EQ(Obj->getUInt("id"), 9u);
  EXPECT_EQ(Obj->getBool("ok"), true);
  EXPECT_EQ(Obj->getUInt("gen"), 4u);
  EXPECT_EQ(Obj->getString("result"), "GMOD(p) = {a}");

  Response Retry;
  Retry.Ok = false;
  Retry.Retry = true;
  Retry.Error = "overloaded";
  auto RObj = parseJsonObject(renderResponse(Retry), Err);
  ASSERT_TRUE(RObj.has_value());
  EXPECT_EQ(RObj->getBool("retry"), true);
  EXPECT_EQ(RObj->getString("error"), "overloaded");
}

TEST(Server, TcpRoundTripThroughLineClient) {
  ServiceOptions Opts;
  Opts.Workers = 2;
  AnalysisService Svc(makeProgram(), Opts);
  TcpServer Server(Svc);
  std::string Error;
  ASSERT_TRUE(Server.start(0, Error)) << Error;
  ASSERT_NE(Server.port(), 0);

  std::string Script = "gmod main\n"
                       "add-global tcp_g\n"
                       "gmod main\n"
                       "check\n"
                       "# a comment line\n"
                       "\n";
  std::FILE *In = fmemopen(Script.data(), Script.size(), "r");
  ASSERT_NE(In, nullptr);
  char *OutBuf = nullptr;
  std::size_t OutLen = 0;
  std::FILE *Out = open_memstream(&OutBuf, &OutLen);
  ASSERT_NE(Out, nullptr);

  int Exit = runClient(Server.port(), In, Out);
  std::fclose(In);
  std::fclose(Out);
  std::string Output(OutBuf, OutLen);
  std::free(OutBuf);

  EXPECT_EQ(Exit, 0) << Output;
  EXPECT_NE(Output.find("\"result\":\"GMOD(main) = {"), std::string::npos)
      << Output;
  EXPECT_NE(Output.find("check: OK"), std::string::npos) << Output;
  EXPECT_EQ(Output.find("\"ok\":false"), std::string::npos) << Output;
  // Four commands -> four response lines (comments/blanks are free).
  EXPECT_EQ(std::count(Output.begin(), Output.end(), '\n'), 4);

  Server.stop();
  EXPECT_EQ(Svc.counters().Edits, 1u);
}

TEST(Server, ScriptErrorsComeBackAsErrorResponses) {
  ServiceOptions Opts;
  Opts.Workers = 1;
  AnalysisService Svc(makeProgram(), Opts);
  TcpServer Server(Svc);
  std::string Error;
  ASSERT_TRUE(Server.start(0, Error)) << Error;

  std::string Script = "gmod nope\n";
  std::FILE *In = fmemopen(Script.data(), Script.size(), "r");
  char *OutBuf = nullptr;
  std::size_t OutLen = 0;
  std::FILE *Out = open_memstream(&OutBuf, &OutLen);
  int Exit = runClient(Server.port(), In, Out);
  std::fclose(In);
  std::fclose(Out);
  std::string Output(OutBuf, OutLen);
  std::free(OutBuf);

  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Output.find("unknown procedure 'nope'"), std::string::npos)
      << Output;
  Server.stop();
}

TEST(Server, TraceIdsAreEchoedOrServerAssigned) {
  ServiceOptions Opts;
  Opts.Workers = 1;
  AnalysisService Svc(makeProgram(), Opts);

  std::mutex M;
  std::vector<std::string> Lines;
  auto Emit = [&](const std::string &L) {
    std::lock_guard<std::mutex> Lock(M);
    Lines.push_back(L);
  };
  handleRequestLine(Svc, R"({"id":1,"cmd":"gmod main","trace":"cli-7"})",
                    Emit);
  handleRequestLine(Svc, R"({"id":2,"cmd":"rmod main"})", Emit);
  // Inline error paths carry the trace too.
  handleRequestLine(Svc, R"({"id":3,"cmd":"load x.mp","trace":"cli-9"})",
                    Emit);

  // Query responses arrive on the worker thread; wait for all three.
  for (int Spin = 0; Spin != 5000; ++Spin) {
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Lines.size() == 3)
        break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> Lock(M);
  ASSERT_EQ(Lines.size(), 3u);

  std::map<std::uint64_t, JsonObject> ById;
  for (const std::string &L : Lines) {
    std::string Err;
    auto Obj = parseJsonObject(L, Err);
    ASSERT_TRUE(Obj.has_value()) << Err << " in " << L;
    ById.emplace(*Obj->getUInt("id"), *Obj);
  }
  // Client-supplied ids come back verbatim.
  EXPECT_EQ(ById.at(1).getString("trace"), "cli-7");
  EXPECT_EQ(ById.at(3).getString("trace"), "cli-9");
  EXPECT_EQ(ById.at(3).getBool("ok"), false);
  // No trace supplied: the server assigns one ("s<N>").
  std::optional<std::string> Assigned = ById.at(2).getString("trace");
  ASSERT_TRUE(Assigned.has_value());
  EXPECT_EQ(Assigned->front(), 's');
  EXPECT_GT(Assigned->size(), 1u);
}

TEST(Server, MetricsAndStatsFlowOverTcp) {
  ServiceOptions Opts;
  Opts.Workers = 1;
  AnalysisService Svc(makeProgram(), Opts);
  TcpServer Server(Svc);
  std::string Error;
  ASSERT_TRUE(Server.start(0, Error)) << Error;

  // The line client: stats and both metrics formats are served inline
  // over the wire, and every request carries a client trace id.
  std::string Script = "gmod main\n"
                       "stats\n"
                       "metrics\n"
                       "metrics --format=prom\n";
  std::FILE *In = fmemopen(Script.data(), Script.size(), "r");
  char *OutBuf = nullptr;
  std::size_t OutLen = 0;
  std::FILE *Out = open_memstream(&OutBuf, &OutLen);
  int Exit = runClient(Server.port(), In, Out);
  std::fclose(In);
  std::fclose(Out);
  std::string Output(OutBuf, OutLen);
  std::free(OutBuf);

  EXPECT_EQ(Exit, 0) << Output;
  EXPECT_NE(Output.find("\"edits\":"), std::string::npos) << Output;
  EXPECT_NE(Output.find("\"counters\""), std::string::npos) << Output;
  EXPECT_NE(Output.find("# TYPE"), std::string::npos) << Output;
  EXPECT_NE(Output.find("\"trace\":\"c1\""), std::string::npos) << Output;

  // The one-shot metrics scraper, both formats.
  char *DumpBuf = nullptr;
  std::size_t DumpLen = 0;
  std::FILE *Dump = open_memstream(&DumpBuf, &DumpLen);
  EXPECT_EQ(runMetricsDump(Server.port(), /*Prom=*/true, Dump), 0);
  std::fclose(Dump);
  std::string Prom(DumpBuf, DumpLen);
  std::free(DumpBuf);
  EXPECT_NE(Prom.find("# TYPE"), std::string::npos) << Prom;
  EXPECT_NE(Prom.find("ipse_service_read_lat_us_count"), std::string::npos)
      << Prom;
  // Decoded payload, not a protocol envelope.
  EXPECT_EQ(Prom.find("\"ok\""), std::string::npos) << Prom;

  Dump = open_memstream(&DumpBuf, &DumpLen);
  EXPECT_EQ(runMetricsDump(Server.port(), /*Prom=*/false, Dump), 0);
  std::fclose(Dump);
  std::string Json(DumpBuf, DumpLen);
  std::free(DumpBuf);
  std::string Err;
  ASSERT_TRUE(parseJsonObject(Json, Err).has_value()) << Err << " in " << Json;
  EXPECT_NE(Json.find("\"histograms\""), std::string::npos) << Json;

  Server.stop();
  // Nobody is listening afterwards: the dump fails cleanly.
  std::FILE *Null = std::fopen("/dev/null", "w");
  EXPECT_EQ(runMetricsDump(Server.port(), true, Null), 1);
  std::fclose(Null);
}

//===----------------------------------------------------------------------===//
// Randomized concurrency stress: every response must be bit-for-bit
// consistent with SOME published snapshot generation.  This is the TSan
// workload in CI.
//===----------------------------------------------------------------------===//

TEST(ServiceStress, EveryResponseMatchesItsSnapshotGeneration) {
  ServiceOptions Opts;
  Opts.Workers = 4;
  Opts.QueueCapacity = 128;
  AnalysisService Svc(makeProgram(24, 8, 11), Opts);

  // Record every published generation (plus the initial one) so readers'
  // responses can be replayed against the exact snapshot that answered.
  std::mutex HistM;
  std::map<std::uint64_t, std::shared_ptr<const AnalysisSnapshot>> History;
  History[Svc.generation()] = Svc.snapshot();
  Svc.setPublishHook([&](std::shared_ptr<const AnalysisSnapshot> S) {
    std::lock_guard<std::mutex> Lock(HistM);
    History[S->generation()] = std::move(S);
  });

  // Query pool drawn from the initial program; later generations may
  // invalidate some names (rm-proc), which must surface as clean error
  // responses, never as torn data.
  std::vector<std::string> Pool;
  {
    const ir::Program &P = Svc.snapshot()->program();
    for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
      std::string N = P.name(ir::ProcId(I));
      Pool.push_back("gmod " + N);
      Pool.push_back("guse " + N);
      Pool.push_back("rmod " + N);
      Pool.push_back("mod " + N + " 0");
      Pool.push_back("use " + N + " 1");
    }
  }

  constexpr unsigned NumReaders = 4;
  constexpr unsigned QueriesPerReader = 120;
  constexpr unsigned NumEdits = 50;
  struct Logged {
    std::string Cmd;
    Response R;
  };
  std::vector<std::vector<Logged>> Logs(NumReaders);
  std::vector<std::thread> Readers;
  for (unsigned T = 0; T != NumReaders; ++T)
    Readers.emplace_back([&, T] {
      Rng R(1000 + T);
      Logs[T].reserve(QueriesPerReader);
      for (unsigned I = 0; I != QueriesPerReader; ++I) {
        const std::string &Cmd = Pool[R.next() % Pool.size()];
        Logs[T].push_back({Cmd, Svc.call(Cmd)});
      }
    });

  // Main thread is the edit stream: EditGen against the service's own
  // (single-writer) program view, shipped through the script grammar like
  // a real client.
  synth::EditGenConfig ECfg;
  ECfg.Seed = 77;
  synth::EditGen Gen(ECfg);
  unsigned EditsApplied = 0;
  for (unsigned I = 0; I != NumEdits; ++I) {
    std::shared_ptr<const AnalysisSnapshot> Cur = Svc.snapshot();
    std::optional<incremental::Edit> E = Gen.next(Cur->program());
    if (!E)
      break;
    Response R = Svc.call(incremental::toScriptLine(Cur->program(), *E));
    ASSERT_TRUE(R.Ok) << R.Error << " for "
                      << incremental::toScriptLine(Cur->program(), *E);
    ++EditsApplied;
  }
  for (std::thread &T : Readers)
    T.join();
  ASSERT_GT(EditsApplied, 0u);

  Response Final = Svc.call("check");
  ASSERT_TRUE(Final.Ok) << Final.Error;
  EXPECT_TRUE(Final.CheckOk) << Final.Result;

  // Replay: each response must reproduce exactly against the snapshot of
  // its generation — same text for successes, same message for errors.
  std::map<std::uint64_t, std::shared_ptr<const AnalysisSnapshot>> Hist;
  {
    std::lock_guard<std::mutex> Lock(HistM);
    Hist = History;
  }
  unsigned Replayed = 0;
  for (const auto &Log : Logs)
    for (const Logged &L : Log) {
      auto It = Hist.find(L.R.Generation);
      ASSERT_NE(It, Hist.end())
          << "response cites unpublished generation " << L.R.Generation;
      std::optional<ScriptCommand> Cmd = parseScriptLine(L.Cmd, 0);
      ASSERT_TRUE(Cmd.has_value());
      try {
        QueryResult QR = evalQueryCommand(*It->second, *Cmd);
        EXPECT_TRUE(L.R.Ok) << L.Cmd << " gen " << L.R.Generation;
        EXPECT_EQ(QR.Text, L.R.Result)
            << L.Cmd << " torn at gen " << L.R.Generation;
      } catch (const ScriptError &E) {
        EXPECT_FALSE(L.R.Ok) << L.Cmd << " gen " << L.R.Generation;
        EXPECT_EQ(E.Message, L.R.Error) << L.Cmd;
      }
      ++Replayed;
    }
  EXPECT_EQ(Replayed, NumReaders * QueriesPerReader);

  // Independently, every recorded snapshot must equal a fresh batch run
  // over its own program copy (no torn captures).
  for (const auto &[Gen2, Snap] : Hist) {
    const ir::Program &P = Snap->program();
    analysis::SideEffectAnalyzer Mod(P);
    for (std::uint32_t I = 0; I != P.numProcs(); ++I)
      ASSERT_EQ(Snap->gmod(ir::ProcId(I)), Mod.gmod(ir::ProcId(I)))
          << "snapshot gen " << Gen2 << " proc " << P.name(ir::ProcId(I));
  }
}

} // namespace
