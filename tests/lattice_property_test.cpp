//===- tests/lattice_property_test.cpp - Lattice invariants -------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The lattice-theoretic oracle battery: properties that must hold for
// *every* engine in tests/SolverMatrix.h on random programs, independent
// of any particular answer.
//
//   1. Containment chain — GMOD(p) ⊇ IMOD+(p) ⊇ IMOD_ext(p) ⊇ IMOD(p)
//      (equations 4 and 5 only ever add bits to the local effects).
//   2. Idempotent re-solve — an engine run twice on the same program
//      returns byte-identical planes (no hidden state, no order effects).
//   3. Monotone growth — additive edits (no removals) can only grow GMOD,
//      checked after every EditGen step on the incremental and demand
//      engines in lockstep.
//   4. Demand ≡ batch on arbitrary query subsets — for random subsets of
//      procedures, a fresh DemandSession's answers are bit-for-bit the
//      batch oracle's, over 100+ random programs; the solved region stays
//      within the program and memoization never changes an answer.
//
// These are exactly the oracles the mutation harness (tools/ipse-mutate)
// counts on to kill seeded solver bugs: a flipped bit-vector op breaks 1
// or 4, a dropped propagation edge breaks 4, an off-by-one level filter
// breaks 1 on nested shapes.
//
//===----------------------------------------------------------------------===//

#include "analysis/IModPlus.h"
#include "analysis/LocalEffects.h"
#include "analysis/RMod.h"
#include "analysis/VarMasks.h"
#include "demand/DemandSession.h"
#include "graph/BindingGraph.h"
#include "graph/Reachability.h"
#include "incremental/AnalysisSession.h"
#include "incremental/Edit.h"
#include "synth/EditGen.h"
#include "synth/ProgramGen.h"

#include "SolverMatrix.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

using namespace ipse;
using analysis::EffectKind;
using analysis::GModResult;
using ir::ProcId;
using ir::Program;
using ir::VarId;

namespace {

struct Shape {
  const char *Name;
  synth::ProgramGenConfig Base;
};

/// Shapes chosen to cover the lattice edge cases: flat two-level, deep
/// nesting (the §4 Below filter), parameter-heavy (β dominates), sparse
/// (mostly-empty sets).
const Shape Shapes[] = {
    {"two-level",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 12;
       C.NumGlobals = 5;
       C.MaxCallsPerProc = 4;
       return C;
     }()},
    {"nested",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 14;
       C.NumGlobals = 4;
       C.MaxNestDepth = 4;
       return C;
     }()},
    {"param-heavy",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 12;
       C.NumGlobals = 2;
       C.MaxFormals = 5;
       C.FormalActualBiasPct = 85;
       return C;
     }()},
    {"sparse",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 10;
       C.NumGlobals = 6;
       C.ModDensityPct = 6;
       C.UseDensityPct = 6;
       return C;
     }()},
};

Program makeProgram(const Shape &S, std::uint64_t Seed) {
  synth::ProgramGenConfig Cfg = S.Base;
  Cfg.Seed = Seed;
  return graph::eliminateUnreachable(synth::generateProgram(Cfg));
}

/// Old ⊆ New where New's universe may have grown (additive universe edits
/// append variable ids, so old bit positions keep their meaning).
void expectGrewFrom(const EffectSet &Old, const EffectSet &New,
                    const std::string &Context) {
  for (std::size_t I = 0; I != Old.size(); ++I)
    if (Old.test(I)) {
      ASSERT_LT(I, New.size()) << Context;
      EXPECT_TRUE(New.test(I)) << Context << ": bit " << I << " was lost";
    }
}

//===----------------------------------------------------------------------===//
// 1. The containment chain.
//===----------------------------------------------------------------------===//

TEST(LatticeProperty, ContainmentChainHoldsForEveryEngine) {
  const std::uint64_t Base = testseed::baseSeed(1);
  const std::vector<testmatrix::SolverEngine> &Engines =
      testmatrix::allSolverEngines();
  for (const Shape &S : Shapes)
    for (std::uint64_t Seed = Base; Seed != Base + 7; ++Seed) {
      Program P = makeProgram(S, Seed);
      for (EffectKind Kind : {EffectKind::Mod, EffectKind::Use}) {
        testmatrix::detail::FrontHalf F(P, Kind);
        for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
          std::string Ctx = std::string(S.Name) + " seed " +
                            std::to_string(Seed) + " proc " +
                            P.name(ProcId(I));
          // IMOD(p) ⊆ IMOD_ext(p) ⊆ IMOD+(p): §3.3 extension and eq. 5
          // both only add bits.
          EXPECT_TRUE(F.Local.own(ProcId(I)).isSubsetOf(
              F.Local.extended(ProcId(I))))
              << Ctx;
          EXPECT_TRUE(F.Local.extended(ProcId(I)).isSubsetOf(F.Plus[I]))
              << Ctx;
        }
        for (const testmatrix::SolverEngine &E : Engines) {
          if (E.TwoLevelOnly && P.maxProcLevel() > 1)
            continue;
          GModResult R = E.Solve(P, Kind);
          for (std::uint32_t I = 0; I != P.numProcs(); ++I)
            EXPECT_TRUE(F.Plus[I].isSubsetOf(R.GMod[I]))
                << E.Name << " " << S.Name << " seed " << Seed << " proc "
                << P.name(ProcId(I)) << ": GMOD must absorb IMOD+";
        }
      }
      ASSERT_FALSE(::testing::Test::HasFailure())
          << S.Name << " seed " << Seed;
    }
}

//===----------------------------------------------------------------------===//
// 2. Idempotent re-solve.
//===----------------------------------------------------------------------===//

TEST(LatticeProperty, ResolveIsIdempotent) {
  const std::uint64_t Base = testseed::baseSeed(1);
  const std::vector<testmatrix::SolverEngine> &Engines =
      testmatrix::allSolverEngines();
  for (const Shape &S : Shapes)
    for (std::uint64_t Seed = Base; Seed != Base + 3; ++Seed) {
      Program P = makeProgram(S, Seed);
      for (EffectKind Kind : {EffectKind::Mod, EffectKind::Use})
        for (const testmatrix::SolverEngine &E : Engines) {
          if (E.TwoLevelOnly && P.maxProcLevel() > 1)
            continue;
          GModResult A = E.Solve(P, Kind);
          GModResult B = E.Solve(P, Kind);
          for (std::uint32_t I = 0; I != P.numProcs(); ++I)
            EXPECT_EQ(A.GMod[I], B.GMod[I])
                << E.Name << " " << S.Name << " seed " << Seed
                << ": second solve diverged on " << P.name(ProcId(I));
        }
    }
}

//===----------------------------------------------------------------------===//
// 3. Monotone growth under additive edit sequences.
//===----------------------------------------------------------------------===//

TEST(LatticeProperty, AdditiveEditsGrowGModMonotonically) {
  const std::uint64_t Base = testseed::baseSeed(1);
  for (const Shape &S : Shapes)
    for (std::uint64_t Seed = Base; Seed != Base + 4; ++Seed) {
      Program P0 = makeProgram(S, Seed);
      incremental::AnalysisSession Inc(P0);
      demand::DemandSession Dem(P0);

      synth::EditGenConfig Cfg;
      Cfg.Seed = Seed * 7919 + 13;
      // Additive edits only: with no removals every step is monotone in
      // the (pointwise-⊆) lattice of GMOD planes.
      Cfg.WeightRemoveMod = 0;
      Cfg.WeightRemoveUse = 0;
      Cfg.WeightRemoveCall = 0;
      Cfg.WeightRemoveProc = 0;
      synth::EditGen Gen(Cfg);

      std::vector<EffectSet> Prev;
      for (std::uint32_t I = 0; I != Inc.program().numProcs(); ++I)
        Prev.push_back(Inc.gmod(ProcId(I)));

      for (unsigned Step = 0; Step != 12; ++Step) {
        std::optional<incremental::Edit> E = Gen.next(Inc.program());
        ASSERT_TRUE(E.has_value());
        incremental::applyEdit(Inc, *E);
        demand::applyEdit(Dem, *E);
        std::string Ctx = std::string(S.Name) + " seed " +
                          std::to_string(Seed) + " step " +
                          std::to_string(Step) + " (" +
                          toString(Inc.program(), *E) + ")";
        // Procedures present before the edit only ever gain bits — and
        // the two engines agree on the new plane exactly.
        for (std::uint32_t I = 0; I != Prev.size(); ++I) {
          const EffectSet &Now = Inc.gmod(ProcId(I));
          expectGrewFrom(Prev[I], Now, Ctx);
          EXPECT_EQ(Dem.gmod(ProcId(I)), Now) << Ctx;
        }
        Prev.clear();
        for (std::uint32_t I = 0; I != Inc.program().numProcs(); ++I)
          Prev.push_back(Inc.gmod(ProcId(I)));
        if (::testing::Test::HasFailure())
          return;
      }
    }
}

//===----------------------------------------------------------------------===//
// 4. Demand ≡ batch on arbitrary query subsets.
//===----------------------------------------------------------------------===//

TEST(LatticeProperty, DemandMatchesBatchOnRandomQuerySubsets) {
  const std::uint64_t Base = testseed::baseSeed(1);
  const testmatrix::SolverEngine &Oracle = testmatrix::allSolverEngines()[0];
  unsigned Programs = 0;
  for (const Shape &S : Shapes)
    for (std::uint64_t Seed = Base; Seed != Base + 26; ++Seed) {
      Program P = makeProgram(S, Seed);
      ++Programs;
      GModResult WantMod = Oracle.Solve(P, EffectKind::Mod);
      GModResult WantUse = Oracle.Solve(P, EffectKind::Use);

      std::mt19937_64 Rng(Seed * 104729 + Programs);
      std::uniform_int_distribution<std::uint32_t> PickProc(
          0, P.numProcs() - 1);
      // Subset sizes 1, ~quarter, ~all: the cold single query, a typical
      // working set, and near-total coverage.
      const std::size_t Sizes[] = {1, 1 + P.numProcs() / 4, P.numProcs()};
      for (std::size_t Size : Sizes) {
        demand::DemandSession D(P);
        std::vector<ProcId> Queried;
        for (std::size_t K = 0; K != Size; ++K)
          Queried.push_back(ProcId(PickProc(Rng)));
        for (ProcId Q : Queried) {
          std::string Ctx = std::string(S.Name) + " seed " +
                            std::to_string(Seed) + " subset " +
                            std::to_string(Size) + " proc " + P.name(Q);
          EXPECT_EQ(D.gmod(Q, EffectKind::Mod), WantMod.GMod[Q.index()])
              << Ctx;
          EXPECT_EQ(D.gmod(Q, EffectKind::Use), WantUse.GMod[Q.index()])
              << Ctx;
          // RMOD(f) = GMOD(owner) restricted to formals — through the
          // demand path too.
          for (VarId F : P.proc(Q).Formals)
            EXPECT_EQ(D.rmodContains(F, EffectKind::Mod),
                      WantMod.GMod[Q.index()].test(F.index()))
                << Ctx;
        }
        // Memoization must be invisible: a repeat query answers from the
        // memo (no new region solve) with the identical bits.
        const std::uint64_t SolvesBefore = D.stats().RegionSolves;
        for (ProcId Q : Queried)
          EXPECT_EQ(D.gmod(Q, EffectKind::Mod), WantMod.GMod[Q.index()]);
        EXPECT_EQ(D.stats().RegionSolves, SolvesBefore)
            << S.Name << " seed " << Seed << ": repeat queries re-solved";
        EXPECT_LE(D.coveredCount(EffectKind::Mod), P.numProcs());
      }
      ASSERT_FALSE(::testing::Test::HasFailure())
          << S.Name << " seed " << Seed;
    }
  EXPECT_GE(Programs, 100u);
}

//===----------------------------------------------------------------------===//
// 4b. The subset property survives arbitrary (including destructive)
// edits: incremental and demand engines walk the same edit stream, then
// random subsets must agree bit-for-bit.
//===----------------------------------------------------------------------===//

TEST(LatticeProperty, DemandSubsetQueriesStayExactUnderEdits) {
  const std::uint64_t Base = testseed::baseSeed(1);
  for (const Shape &S : Shapes)
    for (std::uint64_t Seed = Base; Seed != Base + 3; ++Seed) {
      Program P0 = makeProgram(S, Seed);
      incremental::AnalysisSession Inc(P0);
      demand::DemandSession Dem(P0);
      synth::EditGenConfig Cfg;
      Cfg.Seed = Seed * 613 + 7;
      synth::EditGen Gen(Cfg);
      std::mt19937_64 Rng(Seed * 31 + 5);

      for (unsigned Step = 0; Step != 10; ++Step) {
        std::optional<incremental::Edit> E = Gen.next(Inc.program());
        ASSERT_TRUE(E.has_value());
        incremental::applyEdit(Inc, *E);
        demand::applyEdit(Dem, *E);
        std::uniform_int_distribution<std::uint32_t> PickProc(
            0, Inc.program().numProcs() - 1);
        for (unsigned Q = 0; Q != 3; ++Q) {
          ProcId Proc(PickProc(Rng));
          std::string Ctx = std::string(S.Name) + " seed " +
                            std::to_string(Seed) + " step " +
                            std::to_string(Step) + " proc " +
                            Inc.program().name(Proc);
          EXPECT_EQ(Dem.gmod(Proc, EffectKind::Mod),
                    Inc.gmod(Proc, EffectKind::Mod))
              << Ctx;
          EXPECT_EQ(Dem.gmod(Proc, EffectKind::Use),
                    Inc.gmod(Proc, EffectKind::Use))
              << Ctx;
        }
        if (::testing::Test::HasFailure())
          return;
      }
    }
}

} // namespace

IPSE_SEEDED_TEST_MAIN()
