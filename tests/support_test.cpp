//===- tests/support_test.cpp - BitVector, Rng, StringInterner tests ----------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"
#include "support/LatencyHistogram.h"
#include "support/MpmcQueue.h"
#include "support/Rng.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <set>
#include <thread>
#include <vector>

using namespace ipse;

namespace {

TEST(BitVector, StartsEmpty) {
  BitVector BV(100);
  EXPECT_EQ(BV.size(), 100u);
  EXPECT_TRUE(BV.none());
  EXPECT_FALSE(BV.any());
  EXPECT_EQ(BV.count(), 0u);
  for (std::size_t I = 0; I != 100; ++I)
    EXPECT_FALSE(BV.test(I));
}

TEST(BitVector, SetResetTest) {
  BitVector BV(130);
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(63));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 4u);
  BV.reset(63);
  EXPECT_FALSE(BV.test(63));
  EXPECT_EQ(BV.count(), 3u);
}

TEST(BitVector, ZeroSized) {
  BitVector BV(0);
  EXPECT_TRUE(BV.none());
  EXPECT_EQ(BV.count(), 0u);
  EXPECT_EQ(BV.findNext(0), 0u);
  BitVector Other(0);
  EXPECT_FALSE(BV.orWith(Other));
  EXPECT_EQ(BV, Other);
}

TEST(BitVector, ExactlyOneWord) {
  BitVector BV(64);
  BV.set(0);
  BV.set(63);
  EXPECT_EQ(BV.count(), 2u);
  EXPECT_EQ(BV.findNext(1), 63u);
  EXPECT_EQ(BV.findNext(64), 64u);
}

TEST(BitVector, OrWithDetectsChange) {
  BitVector A(70), B(70);
  B.set(5);
  B.set(69);
  EXPECT_TRUE(A.orWith(B));
  EXPECT_FALSE(A.orWith(B)); // Second or is a no-op.
  EXPECT_TRUE(A.test(5));
  EXPECT_TRUE(A.test(69));
}

TEST(BitVector, AndWith) {
  BitVector A(70), B(70);
  A.set(1);
  A.set(2);
  B.set(2);
  B.set(3);
  EXPECT_TRUE(A.andWith(B));
  EXPECT_FALSE(A.test(1));
  EXPECT_TRUE(A.test(2));
  EXPECT_FALSE(A.test(3));
  EXPECT_FALSE(A.andWith(B));
}

TEST(BitVector, AndNotWith) {
  BitVector A(70), B(70);
  A.set(1);
  A.set(2);
  B.set(2);
  EXPECT_TRUE(A.andNotWith(B));
  EXPECT_TRUE(A.test(1));
  EXPECT_FALSE(A.test(2));
}

TEST(BitVector, OrWithAndNot) {
  BitVector Out(70), A(70), B(70);
  A.set(3);
  A.set(4);
  B.set(4);
  EXPECT_TRUE(Out.orWithAndNot(A, B));
  EXPECT_TRUE(Out.test(3));
  EXPECT_FALSE(Out.test(4));
  EXPECT_FALSE(Out.orWithAndNot(A, B));
}

TEST(BitVector, OrWithIntersectMinus) {
  BitVector Out(70), A(70), Keep(70), Drop(70);
  A.set(1);
  A.set(2);
  A.set(3);
  Keep.set(1);
  Keep.set(2);
  Drop.set(2);
  EXPECT_TRUE(Out.orWithIntersectMinus(A, Keep, Drop));
  EXPECT_TRUE(Out.test(1));
  EXPECT_FALSE(Out.test(2));
  EXPECT_FALSE(Out.test(3));
}

TEST(BitVector, IntersectsAndSubset) {
  BitVector A(128), B(128);
  A.set(100);
  EXPECT_FALSE(A.intersects(B));
  B.set(100);
  EXPECT_TRUE(A.intersects(B));
  EXPECT_TRUE(A.isSubsetOf(B));
  A.set(1);
  EXPECT_FALSE(A.isSubsetOf(B));
  EXPECT_TRUE(B.isSubsetOf(A));
}

TEST(BitVector, FindNextAndIteration) {
  BitVector BV(200);
  std::set<std::size_t> Expected = {0, 1, 63, 64, 65, 127, 128, 199};
  for (std::size_t I : Expected)
    BV.set(I);

  std::set<std::size_t> Seen;
  for (std::size_t I : BV)
    Seen.insert(I);
  EXPECT_EQ(Seen, Expected);

  std::vector<std::size_t> Collected;
  BV.getSetBits(Collected);
  EXPECT_EQ(Collected.size(), Expected.size());
  EXPECT_TRUE(std::is_sorted(Collected.begin(), Collected.end()));

  EXPECT_EQ(BV.findNext(2), 63u);
  EXPECT_EQ(BV.findNext(129), 199u);
  EXPECT_EQ(BV.findNext(200), 200u);
}

TEST(BitVector, ResizeClearsNewBits) {
  BitVector BV(10);
  BV.set(9);
  BV.resize(100);
  EXPECT_EQ(BV.size(), 100u);
  EXPECT_TRUE(BV.test(9));
  for (std::size_t I = 10; I != 100; ++I)
    EXPECT_FALSE(BV.test(I));
  BV.resize(5);
  EXPECT_EQ(BV.count(), 0u);
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector A(10), B(11);
  EXPECT_NE(A, B);
  BitVector C(10);
  EXPECT_EQ(A, C);
  C.set(3);
  EXPECT_NE(A, C);
}

TEST(BitVector, OpCounting) {
  BitVector::resetOpCount();
  BitVector A(640), B(640);
  A.orWith(B);
  EXPECT_EQ(BitVector::opCount(), 10u); // 640 bits = 10 words.
}


TEST(BitVector, OpCountingAggregatesAcrossThreads) {
  // Each thread's words feed a per-thread counter; opCount() folds live
  // counters plus retired totals, so the sum survives thread exit.
  BitVector::resetOpCount();
  constexpr unsigned Threads = 4, Iters = 25;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([] {
      BitVector A(640), B(640); // 10 words each.
      for (unsigned I = 0; I != Iters; ++I)
        A.orWith(B);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(BitVector::opCount(), std::uint64_t(Threads) * Iters * 10);
  BitVector::resetOpCount();
  EXPECT_EQ(BitVector::opCount(), 0u);
}

TEST(MpmcQueue, FifoAndTryPushBackpressure) {
  MpmcQueue<int> Q(3);
  EXPECT_EQ(Q.capacity(), 3u);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_TRUE(Q.tryPush(3));
  EXPECT_FALSE(Q.tryPush(4)); // Full: the backpressure signal.
  EXPECT_EQ(Q.size(), 3u);
  EXPECT_EQ(Q.tryPop(), 1);
  EXPECT_EQ(Q.tryPop(), 2);
  EXPECT_TRUE(Q.tryPush(4));
  EXPECT_EQ(Q.tryPop(), 3);
  EXPECT_EQ(Q.tryPop(), 4);
  EXPECT_EQ(Q.tryPop(), std::nullopt);
}

TEST(MpmcQueue, TryPopBatchDrainsUpToMax) {
  MpmcQueue<int> Q(8);
  for (int I = 0; I != 5; ++I)
    ASSERT_TRUE(Q.tryPush(I));
  std::vector<int> Out;
  EXPECT_EQ(Q.tryPopBatch(Out, 3), 3u);
  EXPECT_EQ(Out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(Q.tryPopBatch(Out, 10), 2u); // Appends the remainder.
  EXPECT_EQ(Out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(Q.tryPopBatch(Out, 10), 0u);
}

TEST(MpmcQueue, CloseDrainsThenStops) {
  MpmcQueue<int> Q(4);
  ASSERT_TRUE(Q.tryPush(7));
  ASSERT_TRUE(Q.tryPush(8));
  Q.close();
  EXPECT_FALSE(Q.tryPush(9)); // Producers fail fast after close.
  EXPECT_FALSE(Q.push(9));
  EXPECT_EQ(Q.pop(), 7); // Consumers drain what was queued...
  EXPECT_EQ(Q.pop(), 8);
  EXPECT_EQ(Q.pop(), std::nullopt); // ...then see end-of-stream.
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  MpmcQueue<int> Q(2);
  std::atomic<bool> GotEos{false};
  std::thread Consumer([&] {
    GotEos = Q.pop() == std::nullopt; // Blocks until close().
  });
  Q.close();
  Consumer.join();
  EXPECT_TRUE(GotEos);
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr unsigned Producers = 3, Consumers = 3, PerProducer = 500;
  MpmcQueue<unsigned> Q(16);
  std::atomic<std::uint64_t> Sum{0};
  std::atomic<unsigned> Popped{0};
  std::vector<std::thread> Threads;
  for (unsigned P = 0; P != Producers; ++P)
    Threads.emplace_back([&, P] {
      for (unsigned I = 0; I != PerProducer; ++I)
        ASSERT_TRUE(Q.push(P * PerProducer + I));
    });
  for (unsigned C = 0; C != Consumers; ++C)
    Threads.emplace_back([&] {
      while (std::optional<unsigned> V = Q.pop()) {
        Sum.fetch_add(*V);
        Popped.fetch_add(1);
      }
    });
  for (unsigned P = 0; P != Producers; ++P)
    Threads[P].join();
  Q.close();
  for (unsigned C = 0; C != Consumers; ++C)
    Threads[Producers + C].join();
  constexpr std::uint64_t N = Producers * PerProducer;
  EXPECT_EQ(Popped.load(), N);
  EXPECT_EQ(Sum.load(), N * (N - 1) / 2); // 0..N-1 each seen exactly once.
}

TEST(LatencyHistogram, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(LatencyHistogram::bucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucketOf(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucketOf(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucketOf(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucketOf(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucketOf(1024), 11u);
  EXPECT_EQ(LatencyHistogram::bucketOf(~std::uint64_t(0)),
            LatencyHistogram::NumBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucketBoundMicros(0), 1u);
  EXPECT_EQ(LatencyHistogram::bucketBoundMicros(3), 8u);
}

TEST(LatencyHistogram, CountsMeanMaxPercentiles) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentileMicros(50), 0u);
  for (int I = 0; I != 90; ++I)
    H.record(1); // Bucket 1, bound 2us.
  for (int I = 0; I != 10; ++I)
    H.record(1000); // Bucket 10, bound 1024us.
  EXPECT_EQ(H.count(), 100u);
  EXPECT_EQ(H.meanMicros(), (90 * 1 + 10 * 1000) / 100u);
  EXPECT_EQ(H.maxMicros(), 1000u);
  EXPECT_EQ(H.percentileMicros(50), 2u);
  EXPECT_EQ(H.percentileMicros(99), 1024u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.maxMicros(), 0u);
}

TEST(LatencyHistogram, ConcurrentRecordingLosesNoSamples) {
  LatencyHistogram H;
  constexpr unsigned Threads = 4, PerThread = 10000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      for (unsigned I = 0; I != PerThread; ++I)
        H.record(T * 100 + (I % 7));
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(H.count(), std::uint64_t(Threads) * PerThread);
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I != 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Rng, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    std::uint64_t X = R.nextInRange(5, 9);
    EXPECT_GE(X, 5u);
    EXPECT_LE(X, 9u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng R(9);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.nextChance(0, 100));
    EXPECT_TRUE(R.nextChance(100, 100));
  }
}

TEST(StringInterner, InternAndLookup) {
  StringInterner SI;
  SymbolId A = SI.intern("alpha");
  SymbolId B = SI.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(SI.intern("alpha"), A);
  EXPECT_EQ(SI.text(A), "alpha");
  EXPECT_EQ(SI.text(B), "beta");
  EXPECT_EQ(SI.lookup("alpha"), A);
  EXPECT_EQ(SI.lookup("gamma"), InvalidSymbol);
  EXPECT_EQ(SI.size(), 2u);
}

TEST(StringInterner, IdsAreDense) {
  StringInterner SI;
  for (int I = 0; I != 50; ++I)
    EXPECT_EQ(SI.intern("name" + std::to_string(I)),
              static_cast<SymbolId>(I));
}

TEST(StringInterner, EmptyAndOddStrings) {
  StringInterner SI;
  SymbolId E = SI.intern("");
  EXPECT_EQ(SI.text(E), "");
  SymbolId S = SI.intern("with space");
  EXPECT_EQ(SI.text(S), "with space");
}

} // namespace
