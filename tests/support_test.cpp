//===- tests/support_test.cpp - BitVector, Rng, StringInterner tests ----------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"
#include "support/Rng.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace ipse;

namespace {

TEST(BitVector, StartsEmpty) {
  BitVector BV(100);
  EXPECT_EQ(BV.size(), 100u);
  EXPECT_TRUE(BV.none());
  EXPECT_FALSE(BV.any());
  EXPECT_EQ(BV.count(), 0u);
  for (std::size_t I = 0; I != 100; ++I)
    EXPECT_FALSE(BV.test(I));
}

TEST(BitVector, SetResetTest) {
  BitVector BV(130);
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(63));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 4u);
  BV.reset(63);
  EXPECT_FALSE(BV.test(63));
  EXPECT_EQ(BV.count(), 3u);
}

TEST(BitVector, ZeroSized) {
  BitVector BV(0);
  EXPECT_TRUE(BV.none());
  EXPECT_EQ(BV.count(), 0u);
  EXPECT_EQ(BV.findNext(0), 0u);
  BitVector Other(0);
  EXPECT_FALSE(BV.orWith(Other));
  EXPECT_EQ(BV, Other);
}

TEST(BitVector, ExactlyOneWord) {
  BitVector BV(64);
  BV.set(0);
  BV.set(63);
  EXPECT_EQ(BV.count(), 2u);
  EXPECT_EQ(BV.findNext(1), 63u);
  EXPECT_EQ(BV.findNext(64), 64u);
}

TEST(BitVector, OrWithDetectsChange) {
  BitVector A(70), B(70);
  B.set(5);
  B.set(69);
  EXPECT_TRUE(A.orWith(B));
  EXPECT_FALSE(A.orWith(B)); // Second or is a no-op.
  EXPECT_TRUE(A.test(5));
  EXPECT_TRUE(A.test(69));
}

TEST(BitVector, AndWith) {
  BitVector A(70), B(70);
  A.set(1);
  A.set(2);
  B.set(2);
  B.set(3);
  EXPECT_TRUE(A.andWith(B));
  EXPECT_FALSE(A.test(1));
  EXPECT_TRUE(A.test(2));
  EXPECT_FALSE(A.test(3));
  EXPECT_FALSE(A.andWith(B));
}

TEST(BitVector, AndNotWith) {
  BitVector A(70), B(70);
  A.set(1);
  A.set(2);
  B.set(2);
  EXPECT_TRUE(A.andNotWith(B));
  EXPECT_TRUE(A.test(1));
  EXPECT_FALSE(A.test(2));
}

TEST(BitVector, OrWithAndNot) {
  BitVector Out(70), A(70), B(70);
  A.set(3);
  A.set(4);
  B.set(4);
  EXPECT_TRUE(Out.orWithAndNot(A, B));
  EXPECT_TRUE(Out.test(3));
  EXPECT_FALSE(Out.test(4));
  EXPECT_FALSE(Out.orWithAndNot(A, B));
}

TEST(BitVector, OrWithIntersectMinus) {
  BitVector Out(70), A(70), Keep(70), Drop(70);
  A.set(1);
  A.set(2);
  A.set(3);
  Keep.set(1);
  Keep.set(2);
  Drop.set(2);
  EXPECT_TRUE(Out.orWithIntersectMinus(A, Keep, Drop));
  EXPECT_TRUE(Out.test(1));
  EXPECT_FALSE(Out.test(2));
  EXPECT_FALSE(Out.test(3));
}

TEST(BitVector, IntersectsAndSubset) {
  BitVector A(128), B(128);
  A.set(100);
  EXPECT_FALSE(A.intersects(B));
  B.set(100);
  EXPECT_TRUE(A.intersects(B));
  EXPECT_TRUE(A.isSubsetOf(B));
  A.set(1);
  EXPECT_FALSE(A.isSubsetOf(B));
  EXPECT_TRUE(B.isSubsetOf(A));
}

TEST(BitVector, FindNextAndIteration) {
  BitVector BV(200);
  std::set<std::size_t> Expected = {0, 1, 63, 64, 65, 127, 128, 199};
  for (std::size_t I : Expected)
    BV.set(I);

  std::set<std::size_t> Seen;
  for (std::size_t I : BV)
    Seen.insert(I);
  EXPECT_EQ(Seen, Expected);

  std::vector<std::size_t> Collected;
  BV.getSetBits(Collected);
  EXPECT_EQ(Collected.size(), Expected.size());
  EXPECT_TRUE(std::is_sorted(Collected.begin(), Collected.end()));

  EXPECT_EQ(BV.findNext(2), 63u);
  EXPECT_EQ(BV.findNext(129), 199u);
  EXPECT_EQ(BV.findNext(200), 200u);
}

TEST(BitVector, ResizeClearsNewBits) {
  BitVector BV(10);
  BV.set(9);
  BV.resize(100);
  EXPECT_EQ(BV.size(), 100u);
  EXPECT_TRUE(BV.test(9));
  for (std::size_t I = 10; I != 100; ++I)
    EXPECT_FALSE(BV.test(I));
  BV.resize(5);
  EXPECT_EQ(BV.count(), 0u);
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector A(10), B(11);
  EXPECT_NE(A, B);
  BitVector C(10);
  EXPECT_EQ(A, C);
  C.set(3);
  EXPECT_NE(A, C);
}

TEST(BitVector, OpCounting) {
  BitVector::resetOpCount();
  BitVector A(640), B(640);
  A.orWith(B);
  EXPECT_EQ(BitVector::opCount(), 10u); // 640 bits = 10 words.
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I != 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(Rng, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(17), 17u);
    std::uint64_t X = R.nextInRange(5, 9);
    EXPECT_GE(X, 5u);
    EXPECT_LE(X, 9u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng R(9);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.nextChance(0, 100));
    EXPECT_TRUE(R.nextChance(100, 100));
  }
}

TEST(StringInterner, InternAndLookup) {
  StringInterner SI;
  SymbolId A = SI.intern("alpha");
  SymbolId B = SI.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(SI.intern("alpha"), A);
  EXPECT_EQ(SI.text(A), "alpha");
  EXPECT_EQ(SI.text(B), "beta");
  EXPECT_EQ(SI.lookup("alpha"), A);
  EXPECT_EQ(SI.lookup("gamma"), InvalidSymbol);
  EXPECT_EQ(SI.size(), 2u);
}

TEST(StringInterner, IdsAreDense) {
  StringInterner SI;
  for (int I = 0; I != 50; ++I)
    EXPECT_EQ(SI.intern("name" + std::to_string(I)),
              static_cast<SymbolId>(I));
}

TEST(StringInterner, EmptyAndOddStrings) {
  StringInterner SI;
  SymbolId E = SI.intern("");
  EXPECT_EQ(SI.text(E), "");
  SymbolId S = SI.intern("with space");
  EXPECT_EQ(SI.text(S), "with space");
}

} // namespace
