//===- tests/parallel_test.cpp - Parallel engine differential harness ---------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The differential harness for the level-scheduled parallel batch engine:
// on randomized programs across shapes × {MOD, USE} × thread counts
// {1, 2, 4, 8}, the parallel engine must be bit-for-bit equal to the
// sequential SideEffectAnalyzer, the iterative oracle, and the incremental
// session after replayed edits — plus determinism (byte-identical reports
// at every thread count), exact op accounting under threads, and the
// ThreadPool/LevelSchedule invariants everything above rests on.
//
// Adversarial shapes: a single giant SCC (level scheduling degenerates to
// one task — the representative fast path must still beat Gauss–Seidel),
// a deep chain (worst-case level count: one component per level), and a
// wide star (one level carrying all the fan-out).
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "analysis/SideEffectAnalyzer.h"
#include "graph/Reachability.h"
#include "incremental/AnalysisSession.h"
#include "ir/ProgramBuilder.h"
#include "parallel/LevelSchedule.h"
#include "parallel/ParallelAnalyzer.h"
#include "parallel/ParallelReport.h"
#include "parallel/ThreadPool.h"
#include "service/AnalysisService.h"
#include "synth/EditGen.h"
#include "synth/ProgramGen.h"

#include "SolverMatrix.h"
#include "TestSeed.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

using namespace ipse;
using namespace ipse::analysis;
using namespace ipse::ir;

namespace {

constexpr unsigned ThreadCounts[] = {1, 2, 4, 8};

//===----------------------------------------------------------------------===//
// ThreadPool: the scheduling substrate.
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (unsigned K : ThreadCounts) {
    parallel::ThreadPool Pool(K);
    EXPECT_EQ(Pool.threads(), K == 0 ? 1 : K);
    for (std::size_t N : {std::size_t(0), std::size_t(1), std::size_t(7),
                          std::size_t(1000)}) {
      std::vector<std::atomic<unsigned>> Hits(N);
      Pool.parallelFor(N, [&](std::size_t I) {
        Hits[I].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t I = 0; I != N; ++I)
        EXPECT_EQ(Hits[I].load(), 1u) << "K=" << K << " N=" << N << " I=" << I;
    }
  }
}

TEST(ThreadPool, BatchLargerThanQueueCapacity) {
  // The internal queue holds 1024 entries; a larger batch forces the
  // producer onto its help-while-full path.
  parallel::ThreadPool Pool(4);
  constexpr std::size_t N = 5000;
  std::atomic<std::size_t> Sum{0};
  Pool.parallelFor(N, [&](std::size_t I) {
    Sum.fetch_add(I + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Sum.load(), N * (N + 1) / 2);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  parallel::ThreadPool Pool(3);
  std::atomic<std::size_t> Total{0};
  for (unsigned Round = 0; Round != 50; ++Round)
    Pool.parallelFor(Round, [&](std::size_t) {
      Total.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_EQ(Total.load(), std::size_t(50 * 49 / 2));
}

//===----------------------------------------------------------------------===//
// LevelSchedule: the correctness invariant of the whole engine.
//===----------------------------------------------------------------------===//

/// Every cross-component edge must point from a strictly higher level to a
/// lower one, and the buckets must partition the components.  Checked on
/// both graphs the engine schedules: the call graph and β.
void expectValidSchedule(const graph::Digraph &G) {
  graph::SccDecomposition Sccs = graph::computeSccs(G);
  parallel::LevelSchedule S = parallel::computeLevelSchedule(G, Sccs);

  ASSERT_EQ(S.LevelOf.size(), Sccs.numSccs());
  std::size_t Bucketed = 0;
  for (std::size_t L = 0; L != S.numLevels(); ++L)
    for (std::uint32_t C : S.level(L)) {
      EXPECT_EQ(S.LevelOf[C], L);
      ++Bucketed;
    }
  EXPECT_EQ(Bucketed, Sccs.numSccs());

  for (std::uint32_t N = 0; N != G.numNodes(); ++N)
    for (const graph::Adjacency &A : G.succs(graph::NodeId(N))) {
      std::uint32_t CU = Sccs.SccOf[N], CV = Sccs.SccOf[A.Dst];
      if (CU != CV)
        EXPECT_GT(S.LevelOf[CU], S.LevelOf[CV])
            << "cross edge " << N << " -> " << A.Dst
            << " does not descend a level";
    }
}

TEST(LevelSchedule, InvariantsHoldOnRandomPrograms) {
  const std::uint64_t Base = testseed::baseSeed(1);
  for (std::uint64_t Seed = Base; Seed != Base + 20; ++Seed) {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 25;
    Cfg.NumGlobals = 6;
    Cfg.MaxNestDepth = Seed % 2 ? 3 : 1;
    Program P = synth::generateProgram(Cfg);
    expectValidSchedule(graph::CallGraph(P).graph());
    expectValidSchedule(graph::BindingGraph(P).graph());
  }
}

TEST(LevelSchedule, KnownShapes) {
  // Deep chain: one component per level, so the level count is the chain
  // length (+1 for main) — the worst case for barrier overhead.
  {
    Program P = synth::makeChainProgram(100, 2);
    graph::CallGraph CG(P);
    graph::SccDecomposition Sccs = graph::computeSccs(CG.graph());
    parallel::LevelSchedule S = parallel::computeLevelSchedule(CG.graph(), Sccs);
    EXPECT_EQ(S.numLevels(), P.numProcs());
    for (std::size_t L = 0; L != S.numLevels(); ++L)
      EXPECT_EQ(S.level(L).size(), 1u);
  }
  // Cycle: the whole chain collapses into one SCC; two levels (main above
  // the cycle component).
  {
    Program P = synth::makeCycleProgram(100, 2);
    graph::CallGraph CG(P);
    graph::SccDecomposition Sccs = graph::computeSccs(CG.graph());
    parallel::LevelSchedule S = parallel::computeLevelSchedule(CG.graph(), Sccs);
    EXPECT_EQ(Sccs.numSccs(), 2u);
    EXPECT_EQ(S.numLevels(), 2u);
  }
}

//===----------------------------------------------------------------------===//
// The differential suite proper.
//===----------------------------------------------------------------------===//

/// Compares the parallel engine at every thread count against the
/// sequential SideEffectAnalyzer and the iterative oracle, for one kind:
/// GMOD per procedure (bit-for-bit), IMOD+ per procedure, the RMOD bit
/// set, and the RMOD solver's boolean step count (the parallel Figure 1
/// performs *exactly* the sequential kernel's steps).
void expectParallelMatches(const Program &P, EffectKind Kind,
                           const std::string &Context) {
  AnalyzerOptions SeqOpts;
  SeqOpts.Kind = Kind;
  SideEffectAnalyzer Seq(P, SeqOpts);
  GModResult Oracle = testmatrix::allSolverEngines().front().Solve(P, Kind);

  for (unsigned K : ThreadCounts) {
    parallel::ParallelAnalyzerOptions Opts;
    Opts.Kind = Kind;
    Opts.Threads = K;
    // These programs are tiny; keep the lanes real and fan out every
    // level so the differential actually exercises the parallel kernels
    // even on hosts where the adaptive policy would inline them.
    Opts.SmallProgramThreshold = 0;
    Opts.Schedule.AdaptiveFanout = false;
    parallel::ParallelAnalyzer Par(P, Opts);

    EXPECT_EQ(Par.rmodResult().ModifiedFormals,
              Seq.rmodResult().ModifiedFormals)
        << Context << " K=" << K;
    EXPECT_EQ(Par.rmodResult().BooleanSteps, Seq.rmodResult().BooleanSteps)
        << Context << " K=" << K;
    for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
      EXPECT_EQ(Par.imodPlus(ProcId(I)), Seq.imodPlus(ProcId(I)))
          << Context << " K=" << K << " proc " << P.name(ProcId(I));
      EXPECT_EQ(Par.gmod(ProcId(I)), Seq.gmod(ProcId(I)))
          << Context << " K=" << K << " proc " << P.name(ProcId(I));
      EXPECT_EQ(Par.gmod(ProcId(I)), Oracle.GMod[I])
          << Context << " K=" << K << " vs oracle, proc "
          << P.name(ProcId(I));
    }
    if (::testing::Test::HasFailure())
      return; // One divergence produces enough output.
  }
}

struct DiffShape {
  const char *Name;
  synth::ProgramGenConfig Base;
};

const DiffShape DiffShapes[] = {
    {"TwoLevelSmall",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 8;
       C.NumGlobals = 3;
       C.MaxFormals = 3;
       return C;
     }()},
    {"TwoLevelDense",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 30;
       C.NumGlobals = 8;
       C.MaxCallsPerProc = 6;
       C.ModDensityPct = 50;
       return C;
     }()},
    {"Dag",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 25;
       C.NumGlobals = 5;
       C.AllowRecursion = false;
       return C;
     }()},
    {"NestedDeep",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 20;
       C.NumGlobals = 4;
       C.MaxNestDepth = 5;
       C.MaxCallsPerProc = 4;
       return C;
     }()},
    {"ParameterHeavy",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 20;
       C.NumGlobals = 2;
       C.MaxFormals = 6;
       C.FormalActualBiasPct = 85;
       return C;
     }()},
    {"SparseEffects",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 15;
       C.NumGlobals = 6;
       C.ModDensityPct = 5;
       C.UseDensityPct = 5;
       return C;
     }()},
};

TEST(ParallelDifferential, RandomPrograms) {
  // 6 shapes × 17 seeds = 102 programs, each checked for MOD and USE at
  // thread counts 1/2/4/8 against the sequential analyzer and the oracle.
  const std::uint64_t Base = testseed::baseSeed(1);
  for (const DiffShape &Shape : DiffShapes)
    for (std::uint64_t Seed = Base; Seed != Base + 17; ++Seed) {
      synth::ProgramGenConfig Cfg = Shape.Base;
      Cfg.Seed = Seed;
      Program P = graph::eliminateUnreachable(synth::generateProgram(Cfg));
      std::string Context =
          std::string(Shape.Name) + " seed " + std::to_string(Seed);
      for (EffectKind Kind : {EffectKind::Mod, EffectKind::Use})
        expectParallelMatches(P, Kind, Context);
      ASSERT_FALSE(::testing::Test::HasFailure()) << Context;
    }
}

TEST(ParallelDifferential, GiantScc) {
  // All procedures in one strongly connected component: the schedule has
  // two levels and a single wide task; the representative fast path must
  // produce the exact fixpoint.
  Program Cycle = synth::makeCycleProgram(64, 2);
  for (EffectKind Kind : {EffectKind::Mod, EffectKind::Use})
    expectParallelMatches(Cycle, Kind, "cycle-64");

  // Complete call graph over 12 procedures (denser than a simple cycle).
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  std::vector<VarId> G;
  std::vector<ProcId> Procs;
  for (unsigned I = 0; I != 12; ++I)
    G.push_back(B.addGlobal("g" + std::to_string(I)));
  for (unsigned I = 0; I != 12; ++I)
    Procs.push_back(B.createProc("p" + std::to_string(I), Main));
  for (unsigned I = 0; I != 12; ++I) {
    StmtId S = B.addStmt(Procs[I]);
    B.addMod(S, G[I]);
    B.addUse(S, G[(I + 1) % 12]);
    for (unsigned J = 0; J != 12; ++J)
      if (I != J)
        B.addCallStmt(Procs[I], Procs[J], {});
  }
  B.addCallStmt(Main, Procs[0], {});
  Program Complete = B.finish();
  for (EffectKind Kind : {EffectKind::Mod, EffectKind::Use})
    expectParallelMatches(Complete, Kind, "complete-12");
}

TEST(ParallelDifferential, DeepChain) {
  // Worst-case level count: every component is its own level, so the
  // schedule degenerates to a sequential sweep with one task per barrier.
  Program P = synth::makeChainProgram(400, 2);
  for (EffectKind Kind : {EffectKind::Mod, EffectKind::Use})
    expectParallelMatches(P, Kind, "chain-400");
}

TEST(ParallelDifferential, WideStar) {
  // One-level fan-out: main calls 300 leaves; level 0 carries all of them
  // concurrently.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G0 = B.addGlobal("a");
  VarId G1 = B.addGlobal("b");
  for (unsigned I = 0; I != 300; ++I) {
    ProcId Pp = B.createProc("p" + std::to_string(I), Main);
    StmtId S = B.addStmt(Pp);
    B.addMod(S, I % 2 ? G0 : G1);
    B.addUse(S, I % 3 ? G1 : G0);
    B.addCallStmt(Main, Pp, {});
  }
  Program P = B.finish();

  parallel::ParallelAnalyzerOptions Opts;
  Opts.Threads = 4;
  Opts.SmallProgramThreshold = 0;
  // Force the level schedule into existence: under the adaptive policy a
  // one-core host would take the direct sweep and report no levels.
  Opts.Schedule.AdaptiveFanout = false;
  parallel::ParallelAnalyzer An(P, Opts);
  EXPECT_EQ(An.scheduleStats().Levels, 2u);
  EXPECT_EQ(An.scheduleStats().WidestLevel, 300u);

  for (EffectKind Kind : {EffectKind::Mod, EffectKind::Use})
    expectParallelMatches(P, Kind, "star-300");
}

//===----------------------------------------------------------------------===//
// The small-program floor: K > 1 on tiny inputs is pure pool overhead
// (every benchmarked shape loses), so the owned-pool constructor clamps
// to one lane below the threshold.
//===----------------------------------------------------------------------===//

TEST(ParallelAnalyzer, SmallProgramFloorClampsOwnedPool) {
  Program P = synth::makeFortranStyleProgram(64, 16, 3, 7);
  ASSERT_LT(P.numProcs(), 4096u);

  parallel::ParallelAnalyzerOptions Opts;
  Opts.Threads = 8;
  parallel::ParallelAnalyzer Clamped(P, Opts);
  EXPECT_EQ(Clamped.threads(), 1u);

  Opts.SmallProgramThreshold = 0; // disabled: the request stands
  parallel::ParallelAnalyzer Raw(P, Opts);
  EXPECT_EQ(Raw.threads(), 8u);

  Opts.SmallProgramThreshold = 32; // program is above it: no clamp
  parallel::ParallelAnalyzer Above(P, Opts);
  EXPECT_EQ(Above.threads(), 8u);

  // Answer-invisible: clamped and raw runs agree bit for bit.
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    EXPECT_EQ(Clamped.gmod(ProcId(I)), Raw.gmod(ProcId(I)));

  parallel::ParallelAnalyzerOptions O;
  O.Threads = 8;
  EXPECT_EQ(O.effectiveThreads(100), 1u);
  EXPECT_EQ(O.effectiveThreads(4096), 8u);
  O.SmallProgramThreshold = 0;
  EXPECT_EQ(O.effectiveThreads(1), 8u);
  O.Threads = 0;
  EXPECT_EQ(O.effectiveThreads(1), 1u);
}

//===----------------------------------------------------------------------===//
// The adaptive fan-out policy: per-level inline-vs-pool decisions are
// answer-invisible, and the decision logic itself is deterministic.
//===----------------------------------------------------------------------===//

TEST(AdaptiveSchedule, ShouldFanOutDecision) {
  parallel::ScheduleOptions S;
  S.AdaptiveFanout = true;
  S.MinFanoutTasks = 2;
  S.MinFanoutWords = 2048;

  S.HardwareLanes = 1; // one real lane: never worth a handoff
  EXPECT_FALSE(S.shouldFanOut(1000, 1000));

  S.HardwareLanes = 8;
  EXPECT_FALSE(S.shouldFanOut(1, 1 << 20)); // one task: nothing to spread
  EXPECT_FALSE(S.shouldFanOut(100, 1));     // 100 words: below the bar
  EXPECT_TRUE(S.shouldFanOut(100, 32));     // 3200 words: clears it
  EXPECT_TRUE(S.shouldFanOut(2048, 1));     // many tiny tasks still add up

  S.HardwareLanes = 0; // unknown host: fan out on faith
  EXPECT_TRUE(S.shouldFanOut(100, 32));

  S.AdaptiveFanout = false; // forced: every level fans out
  S.HardwareLanes = 1;
  EXPECT_TRUE(S.shouldFanOut(1, 1));
}

TEST(AdaptiveSchedule, ForcedAndAdaptiveRunsAgreeBitForBit) {
  // A wide two-level program large enough that per-level decisions can
  // differ between policies; both runs must produce the same planes, and
  // the stats must account every level as exactly one of fanned-out or
  // inlined.
  Program P = synth::makeLayeredProgram(6, 20, 3, 3, 5, 11);

  parallel::ParallelAnalyzerOptions Forced;
  Forced.Threads = 4;
  Forced.SmallProgramThreshold = 0;
  Forced.Schedule.AdaptiveFanout = false;
  parallel::ParallelAnalyzer ForcedAn(P, Forced);
  const auto &FS = ForcedAn.scheduleStats();
  EXPECT_EQ(FS.InlineLevels, 0u);
  EXPECT_EQ(FS.FanoutLevels, FS.Levels);

  parallel::ParallelAnalyzerOptions Lanes1;
  Lanes1.Threads = 4;
  Lanes1.SmallProgramThreshold = 0;
  Lanes1.Schedule.AdaptiveFanout = true;
  Lanes1.Schedule.HardwareLanes = 1; // adaptive floor: everything inlines
  parallel::ParallelAnalyzer InlineAn(P, Lanes1);
  const auto &IS = InlineAn.scheduleStats();
  EXPECT_EQ(IS.FanoutLevels, 0u);
  EXPECT_EQ(IS.InlineLevels, IS.Levels);

  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    EXPECT_EQ(ForcedAn.gmod(ProcId(I)), InlineAn.gmod(ProcId(I)))
        << "policy-dependent answer at proc " << P.name(ProcId(I));
}

TEST(ThreadPool, ChunkedClaimingCoversAllIndices) {
  // Explicit chunk sizes, including ones that do not divide the batch:
  // every index must run exactly once whatever the chunk geometry.
  parallel::ThreadPool Pool(4);
  for (std::size_t Chunk : {std::size_t(1), std::size_t(3), std::size_t(7),
                            std::size_t(64), std::size_t(1000)}) {
    const std::size_t N = 193;
    std::vector<std::atomic<unsigned>> Hits(N);
    Pool.parallelFor(
        N, [&](std::size_t I) { Hits[I].fetch_add(1); }, Chunk);
    for (std::size_t I = 0; I != N; ++I)
      EXPECT_EQ(Hits[I].load(), 1u) << "chunk " << Chunk << " index " << I;
  }
}

//===----------------------------------------------------------------------===//
// Against the incremental session, after replayed edits.
//===----------------------------------------------------------------------===//

Program makeSessionShape(unsigned Shape, std::uint64_t Seed) {
  switch (Shape % 5) {
  case 0: {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 10;
    Cfg.NumGlobals = 6;
    return synth::generateProgram(Cfg);
  }
  case 1: {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 12;
    Cfg.NumGlobals = 4;
    Cfg.MaxNestDepth = 3;
    return synth::generateProgram(Cfg);
  }
  case 2:
    return synth::makeCycleProgram(8, 2);
  case 3:
    return synth::makeLayeredProgram(3, 4, 2, 2, 4, Seed);
  default:
    return synth::makeFortranStyleProgram(12, 8, 3, Seed);
  }
}

TEST(ParallelDifferential, MatchesIncrementalSessionAfterReplayedEdits) {
  // 5 shapes × 6 seeds, 10 random edits each (all tiers enabled): the
  // session's delta-maintained results and a fresh parallel solve of the
  // edited program must coincide bit-for-bit.
  const std::uint64_t Base = testseed::baseSeed(1);
  for (unsigned Shape = 0; Shape != 5; ++Shape)
    for (std::uint64_t Seed = Base; Seed != Base + 6; ++Seed) {
      incremental::AnalysisSession S(makeSessionShape(Shape, Seed));
      synth::EditGenConfig Cfg;
      Cfg.Seed = Seed * 977 + Shape;
      synth::EditGen Gen(Cfg);
      for (unsigned I = 0; I != 10; ++I) {
        std::optional<incremental::Edit> E = Gen.next(S.program());
        if (!E)
          break;
        incremental::applyEdit(S, *E);
      }
      S.flush();

      std::string Context = "session shape " + std::to_string(Shape) +
                            " seed " + std::to_string(Seed);
      for (unsigned K : {1u, 4u}) {
        for (EffectKind Kind : {EffectKind::Mod, EffectKind::Use}) {
          parallel::ParallelAnalyzerOptions Opts;
          Opts.Kind = Kind;
          Opts.Threads = K;
          Opts.SmallProgramThreshold = 0;
          parallel::ParallelAnalyzer Par(S.program(), Opts);
          for (std::uint32_t I = 0; I != S.program().numProcs(); ++I)
            EXPECT_EQ(Par.gmod(ProcId(I)), S.gmod(ProcId(I), Kind))
                << Context << " K=" << K << " proc " << I;
        }
      }
      ASSERT_FALSE(::testing::Test::HasFailure()) << Context;
    }
}

/// The session's own parallel mode (SessionOptions::Threads) must be
/// invisible in results — construction and tier-3 rebuilds run the
/// level-scheduled solvers, everything else is shared code.
TEST(ParallelDifferential, SessionThreadsOptionIsResultInvisible) {
  Program P = synth::makeNestedProgram(4, 3, 2);
  incremental::SessionOptions Par;
  Par.Threads = 4;
  incremental::AnalysisSession S4(P, Par);
  incremental::AnalysisSession S1(P);

  auto expectSessionsEqual = [&](const char *When) {
    ASSERT_EQ(S4.program().numProcs(), S1.program().numProcs());
    for (std::uint32_t I = 0; I != S1.program().numProcs(); ++I) {
      EXPECT_EQ(S4.gmod(ProcId(I)), S1.gmod(ProcId(I))) << When << " " << I;
      EXPECT_EQ(S4.guse(ProcId(I)), S1.guse(ProcId(I))) << When << " " << I;
    }
  };
  expectSessionsEqual("initial");

  // A universe edit forces the tier-3 rebuild — the parallel path.
  VarId G4 = S4.addGlobal("fresh_g");
  VarId G1 = S1.addGlobal("fresh_g");
  ASSERT_EQ(G4, G1);
  ProcId Main = S1.program().main();
  StmtId T4 = S4.addStmt(Main);
  StmtId T1 = S1.addStmt(Main);
  ASSERT_EQ(T4, T1);
  S4.addMod(T4, G4);
  S1.addMod(T1, G1);
  expectSessionsEqual("after universe edit");
  EXPECT_GE(S4.stats().FullRebuilds, 1u);
}

//===----------------------------------------------------------------------===//
// Determinism: byte-identical reports at every thread count.
//===----------------------------------------------------------------------===//

TEST(ParallelDeterminism, ReportsAreByteIdenticalAcrossThreadCounts) {
  std::vector<std::pair<std::string, Program>> Cases;
  Cases.emplace_back("fortran", synth::makeFortranStyleProgram(60, 24, 3, 11));
  Cases.emplace_back("nested", synth::makeNestedProgram(4, 3, 2));
  Cases.emplace_back("cycle", synth::makeCycleProgram(24, 2));
  Cases.emplace_back("chain", synth::makeChainProgram(50, 2));
  {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = 5;
    Cfg.NumProcs = 20;
    Cfg.NumGlobals = 5;
    Cfg.MaxNestDepth = 3;
    Cases.emplace_back("random", synth::generateProgram(Cfg));
  }

  ReportOptions Options;
  Options.IncludeRMod = true;
  for (const auto &[Name, P] : Cases) {
    const std::string Seq = makeReport(P, Options);
    for (unsigned K : ThreadCounts) {
      // Two runs per thread count: equal to the sequential text AND to
      // each other (no dependence on scheduling whatsoever).
      EXPECT_EQ(parallel::makeReportParallel(P, Options, K), Seq)
          << Name << " K=" << K;
      EXPECT_EQ(parallel::makeReportParallel(P, Options, K), Seq)
          << Name << " K=" << K << " (second run)";
    }
  }
}

//===----------------------------------------------------------------------===//
// Op accounting stays exact under threads.
//===----------------------------------------------------------------------===//

TEST(ParallelOpCounts, WordCountsAreExactAndThreadCountInvariant) {
  // Every per-component kernel is deterministic and the barrier orders all
  // counted operations before the scope is read, so the measured word count
  // must be the same at every thread count — a sampling race or a lost
  // per-thread counter would show up as a diff here (TSan runs this too).
  Program P = synth::makeFortranStyleProgram(300, 64, 3, 7);
  std::vector<std::uint64_t> Deltas;
  for (unsigned K : ThreadCounts) {
    OpCountScope Scope;
    parallel::ParallelAnalyzerOptions Opts;
    Opts.Threads = K;
    Opts.SmallProgramThreshold = 0;
    parallel::ParallelAnalyzer An(P, Opts);
    Deltas.push_back(Scope.delta());
    EXPECT_TRUE(An.gmod(P.main()).any());
  }
  ASSERT_EQ(Deltas.size(), 4u);
  EXPECT_GT(Deltas[0], 0u);
  for (std::size_t I = 1; I != Deltas.size(); ++I)
    EXPECT_EQ(Deltas[I], Deltas[0])
        << "word count differs between K=1 and K=" << ThreadCounts[I];
}

//===----------------------------------------------------------------------===//
// Service wiring: AnalysisThreads must be answer-invisible.
//===----------------------------------------------------------------------===//

TEST(ParallelService, AnalysisThreadsOptionIsAnswerInvisible) {
  Program P = synth::makeFortranStyleProgram(30, 12, 3, 3);
  service::ServiceOptions ParOpts;
  ParOpts.AnalysisThreads = 4;
  service::AnalysisService Par(P, ParOpts);
  service::AnalysisService Seq(P, service::ServiceOptions{});

  std::string Main = P.name(P.main());
  service::Response R1 = Par.call("gmod " + Main);
  service::Response R2 = Seq.call("gmod " + Main);
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_EQ(R1.Result, R2.Result);

  // A universe edit routes the writer thread through the parallel rebuild.
  ASSERT_TRUE(Par.call("add-global par_g").Ok);
  ASSERT_TRUE(Seq.call("add-global par_g").Ok);
  R1 = Par.call("gmod " + Main);
  R2 = Seq.call("gmod " + Main);
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_EQ(R1.Result, R2.Result);
  EXPECT_TRUE(Par.call("check").CheckOk);
}

} // namespace

IPSE_SEEDED_TEST_MAIN()
