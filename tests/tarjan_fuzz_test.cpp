//===- tests/tarjan_fuzz_test.cpp - SCC fuzzing vs brute force ----------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Both linear-time algorithms stand on Tarjan's SCC machinery, so it gets
// its own randomized validation: on hundreds of random digraphs, the SCC
// decomposition must match the brute-force definition (mutual
// reachability via transitive closure), and the component ids must be a
// reverse topological order of the condensation.
//
//===----------------------------------------------------------------------===//

#include "graph/Digraph.h"
#include "graph/Tarjan.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ipse;
using namespace ipse::graph;

namespace {

/// Warshall transitive closure; Reach[i][j] == i reaches j (reflexive).
std::vector<std::vector<bool>> transitiveClosure(const Digraph &G) {
  const std::size_t N = G.numNodes();
  std::vector<std::vector<bool>> Reach(N, std::vector<bool>(N, false));
  for (NodeId I = 0; I != N; ++I) {
    Reach[I][I] = true;
    for (const Adjacency &A : G.succs(I))
      Reach[I][A.Dst] = true;
  }
  for (NodeId K = 0; K != N; ++K)
    for (NodeId I = 0; I != N; ++I)
      if (Reach[I][K])
        for (NodeId J = 0; J != N; ++J)
          if (Reach[K][J])
            Reach[I][J] = true;
  return Reach;
}

Digraph randomGraph(Rng &R, std::size_t N, std::size_t E) {
  Digraph G(N);
  for (std::size_t I = 0; I != E; ++I)
    G.addEdge(static_cast<NodeId>(R.nextBelow(N)),
              static_cast<NodeId>(R.nextBelow(N)));
  G.finalize();
  return G;
}

class TarjanFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TarjanFuzz, MatchesMutualReachability) {
  Rng R(GetParam());
  for (int Round = 0; Round != 8; ++Round) {
    std::size_t N = 2 + R.nextBelow(30);
    std::size_t E = R.nextBelow(3 * N);
    Digraph G = randomGraph(R, N, E);
    SccDecomposition S = computeSccs(G);
    std::vector<std::vector<bool>> Reach = transitiveClosure(G);

    // Same component iff mutually reachable.
    for (NodeId I = 0; I != N; ++I)
      for (NodeId J = 0; J != N; ++J)
        EXPECT_EQ(S.SccOf[I] == S.SccOf[J], Reach[I][J] && Reach[J][I])
            << "nodes " << I << "," << J << " at N=" << N << " E=" << E;

    // Reverse topological ids.
    for (EdgeId Eid = 0; Eid != G.numEdges(); ++Eid)
      if (S.SccOf[G.edgeSource(Eid)] != S.SccOf[G.edgeTarget(Eid)])
        EXPECT_LT(S.SccOf[G.edgeTarget(Eid)], S.SccOf[G.edgeSource(Eid)]);

    // Members lists partition the nodes.
    std::size_t Total = 0;
    for (std::uint32_t C = 0; C != S.numSccs(); ++C) {
      Total += S.Members[C].size();
      for (NodeId M : S.Members[C])
        EXPECT_EQ(S.SccOf[M], C);
    }
    EXPECT_EQ(Total, N);

    // The condensation must be acyclic: its SCCs are all singletons.
    Digraph Cond = buildCondensation(G, S);
    SccDecomposition CS = computeSccs(Cond);
    EXPECT_EQ(CS.numSccs(), Cond.numNodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TarjanFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

} // namespace
