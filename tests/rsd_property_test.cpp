//===- tests/rsd_property_test.cpp - §6 solver vs chaotic-iteration oracle ----===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Random regular-section problems over random binding multi-graphs: the
// SCC-ordered solver must reach the same fixpoint as unordered chaotic
// iteration of the defining equations, and the solution must satisfy the
// framework's local laws at every node.
//
//===----------------------------------------------------------------------===//

#include "analysis/RegularSectionAnalysis.h"
#include "graph/BindingGraph.h"
#include "graph/Tarjan.h"
#include "support/Rng.h"
#include "synth/ProgramGen.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace ipse;
using namespace ipse::analysis;
using namespace ipse::ir;

namespace {

/// Builds a random but *rank-consistent* section problem over β: every
/// strongly connected component gets one rank; an edge may step a rank-2
/// source down to a rank-1 target via a row/column binding, never up.
struct RandomSectionProblem {
  Program P;
  std::unique_ptr<graph::BindingGraph> BG;
  std::unique_ptr<RsdProblem> Problem;
  std::vector<VarId> ArrayFormals;

  explicit RandomSectionProblem(std::uint64_t Seed) {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 18;
    Cfg.NumGlobals = 3;
    Cfg.MaxFormals = 3;
    Cfg.FormalActualBiasPct = 80;
    Cfg.MaxCallsPerProc = 4;
    P = synth::generateProgram(Cfg);
    BG = std::make_unique<graph::BindingGraph>(P);
    Problem = std::make_unique<RsdProblem>(P, *BG);

    Rng R(Seed * 7919 + 1);
    const graph::Digraph &G = BG->graph();
    graph::SccDecomposition Sccs = graph::computeSccs(G);

    // Rank per component, respecting reverse topological order: a
    // component must not be forced below any successor's rank.
    std::vector<unsigned> SccRank(Sccs.numSccs(), 1);
    for (std::uint32_t C = 0; C != Sccs.numSccs(); ++C) {
      unsigned MinRank = 1;
      for (graph::NodeId M : Sccs.Members[C])
        for (const graph::Adjacency &A : G.succs(M))
          if (Sccs.SccOf[A.Dst] != C)
            MinRank = std::max(MinRank, SccRank[Sccs.SccOf[A.Dst]] == 2
                                            ? 2u
                                            : 1u);
      SccRank[C] = MinRank == 2 ? 2 : (R.nextChance(50, 100) ? 2 : 1);
    }

    for (graph::NodeId N = 0; N != BG->numNodes(); ++N) {
      VarId F = BG->formal(N);
      unsigned Rank = SccRank[Sccs.SccOf[N]];
      Problem->setFormalArray(F, Rank);
      ArrayFormals.push_back(F);
      Problem->setLocalSection(F, randomSection(R, Rank, F));
    }

    for (graph::EdgeId E = 0; E != G.numEdges(); ++E) {
      unsigned SrcRank = SccRank[Sccs.SccOf[G.edgeSource(E)]];
      unsigned DstRank = SccRank[Sccs.SccOf[G.edgeTarget(E)]];
      if (SrcRank == DstRank)
        continue; // Identity is the default.
      assert(SrcRank > DstRank && "rank assignment violated the topology");
      Subscript Fixed = randomSubscript(
          R, P.callSite(BG->origin(E).Site).Caller, /*AllowStar=*/false);
      Problem->setEdgeBinding(E, R.nextChance(50, 100)
                                     ? SectionBinding::rowOf(Fixed)
                                     : SectionBinding::colOf(Fixed));
    }
  }

  /// A subscript valid in \p Proc: a constant or a symbol naming a
  /// variable visible there.
  Subscript randomSubscript(Rng &R, ProcId Proc, bool AllowStar) {
    if (AllowStar && R.nextChance(25, 100))
      return Subscript::star();
    if (R.nextChance(50, 100))
      return Subscript::constant(static_cast<int>(R.nextBelow(5)));
    // A visible variable: one of the globals or one of Proc's formals.
    const Procedure &Pr = P.proc(Proc);
    if (!Pr.Formals.empty() && R.nextChance(60, 100))
      return Subscript::symbol(Pr.Formals[R.nextBelow(Pr.Formals.size())]);
    const std::vector<VarId> &Globals = P.proc(P.main()).Locals;
    return Subscript::symbol(Globals[R.nextBelow(Globals.size())]);
  }

  RegularSection randomSection(Rng &R, unsigned Rank, VarId F) {
    ProcId Owner = P.var(F).Owner;
    if (R.nextChance(30, 100))
      return RegularSection::none(Rank);
    if (Rank == 1)
      return RegularSection::section1(randomSubscript(R, Owner, true));
    return RegularSection::section2(randomSubscript(R, Owner, true),
                                    randomSubscript(R, Owner, true));
  }
};

/// A two-node subproblem: \p F starts at none, \p Succ pinned to
/// \p Pinned; all β edges between the pair keep their real bindings
/// (parallel edges would otherwise default to Identity, which need not be
/// rank-consistent).
RsdProblem makePinnedSubproblem(const RandomSectionProblem &RP, VarId F,
                                VarId Succ, const RegularSection &Pinned) {
  const graph::Digraph &G = RP.BG->graph();
  RsdProblem One(RP.P, *RP.BG);
  One.setFormalArray(F, RP.Problem->rankOf(F));
  if (Succ != F)
    One.setFormalArray(Succ, RP.Problem->rankOf(Succ));
  One.setLocalSection(Succ, Pinned);
  for (graph::EdgeId E = 0; E != G.numEdges(); ++E) {
    VarId Src = RP.BG->formal(G.edgeSource(E));
    VarId Dst = RP.BG->formal(G.edgeTarget(E));
    bool SrcIn = Src == F || Src == Succ;
    bool DstIn = Dst == F || Dst == Succ;
    if (SrcIn && DstIn)
      One.setEdgeBinding(E, RP.Problem->edgeBinding(E));
  }
  return One;
}

/// The oracle: unordered chaotic iteration of
///   rsd(n) = lrsd(n) ⊓ ⊓_e g_e(rsd(succ))
/// via repeated full sweeps (in the opposite node order to the solver's)
/// until nothing changes.  Each g_e application goes through a fresh
/// single-edge subproblem, so the production edge semantics are reused
/// while the iteration strategy is completely different.
std::map<VarId, RegularSection>
chaoticFixpoint(const RandomSectionProblem &RP) {
  const graph::BindingGraph &BG = *RP.BG;
  const graph::Digraph &G = BG.graph();

  std::map<VarId, RegularSection> Cur;
  for (VarId F : RP.ArrayFormals)
    Cur.insert({F, RP.Problem->localSection(F)});

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Deliberately iterate in *reverse* node order (a different strategy
    // than the solver's SCC order).
    for (graph::NodeId N = static_cast<graph::NodeId>(BG.numNodes());
         N-- > 0;) {
      VarId F = BG.formal(N);
      RegularSection NewVal = Cur.at(F);
      for (const graph::Adjacency &A : G.succs(N)) {
        VarId Succ = BG.formal(A.Dst);
        // Applying a pinned two-node subproblem merges several equation
        // terms at once (parallel and reverse edges between the pair),
        // which chaotic iteration permits: every application is one of
        // the system's own, and values stay above the unique fixpoint.
        RsdProblem One = makePinnedSubproblem(RP, F, Succ, Cur.at(Succ));
        RsdResult Single = solveRsd(One);
        NewVal = NewVal.meet(Single.of(F));
      }
      if (NewVal != Cur.at(F)) {
        Cur.insert_or_assign(F, NewVal);
        Changed = true;
      }
    }
  }
  return Cur;
}

class RsdRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RsdRandom, SolverMatchesChaoticIteration) {
  RandomSectionProblem RP(GetParam());
  if (RP.BG->numNodes() == 0)
    return;
  RsdResult Fast = solveRsd(*RP.Problem);
  std::map<VarId, RegularSection> Oracle = chaoticFixpoint(RP);
  for (VarId F : RP.ArrayFormals)
    EXPECT_EQ(Fast.of(F), Oracle.at(F))
        << "formal " << RP.P.name(F) << ": fast "
        << Fast.of(F).toString() << " vs oracle "
        << Oracle.at(F).toString();
}

TEST_P(RsdRandom, SolutionIsAFixpointAndContainsLrsd) {
  RandomSectionProblem RP(GetParam());
  RsdResult Fast = solveRsd(*RP.Problem);
  const graph::Digraph &G = RP.BG->graph();
  for (graph::NodeId N = 0; N != RP.BG->numNodes(); ++N) {
    VarId F = RP.BG->formal(N);
    const RegularSection &Val = Fast.of(F);
    // rsd(f) summarizes at least the local effect.
    EXPECT_TRUE(Val.contains(RP.Problem->localSection(F)));
    // ...and is stable under one more application of every edge.
    for (const graph::Adjacency &A : G.succs(N)) {
      VarId Succ = RP.BG->formal(A.Dst);
      RsdProblem One = makePinnedSubproblem(RP, F, Succ, Fast.of(Succ));
      EXPECT_TRUE(Val.contains(solveRsd(One).of(F)))
          << "edge " << A.Edge << " still widens " << RP.P.name(F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RsdRandom,
                         ::testing::Range<std::uint64_t>(1, 41));

} // namespace
