//===- tests/metrics_export_test.cpp - Prometheus export tests ----------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The metrics export surface: LatencyHistogram's bucket/quantile accessors
// (the raw material of the Prometheus exporter) under empty, single-sample,
// overflow, and merged-across-threads populations; prometheusName
// sanitization; and prometheusText's line-level validity — every line must
// be either a `# TYPE` comment or `name{labels} value` with a legal metric
// name, histograms must be cumulative and monotone, and `+Inf` must equal
// `_count`.  All of this is live under -DIPSE_OBSERVE=OFF too: the
// registry and exporter are not compiled out.
//
//===----------------------------------------------------------------------===//

#include "observe/Metrics.h"
#include "observe/Prometheus.h"
#include "support/LatencyHistogram.h"
#include "tenant/TenantService.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace ipse;

namespace {

//===----------------------------------------------------------------------===//
// A small validator for the Prometheus text exposition format (0.0.4).
//===----------------------------------------------------------------------===//

bool isLegalMetricName(const std::string &Name) {
  if (Name.empty())
    return false;
  auto Head = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
           C == ':';
  };
  if (!Head(Name[0]))
    return false;
  for (char C : Name)
    if (!Head(C) && !(C >= '0' && C <= '9'))
      return false;
  return true;
}

/// One parsed sample line: `name value` or `name{labels} value`.
struct PromSample {
  std::string Name;
  std::string Labels; // raw text inside {...}, empty if none
  double Value = 0;
};

/// Splits \p Text into samples, failing the calling test on any line that
/// is neither a comment nor a well-formed sample.
std::vector<PromSample> parsePromText(const std::string &Text) {
  std::vector<PromSample> Samples;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#') {
      // The only comments we emit are `# TYPE <name> <type>`.
      if (!Line.empty()) {
        std::istringstream C(Line);
        std::string Hash, Kw, Name, Type, Extra;
        C >> Hash >> Kw >> Name >> Type;
        EXPECT_EQ(Kw, "TYPE") << Line;
        EXPECT_TRUE(isLegalMetricName(Name)) << Line;
        EXPECT_TRUE(Type == "counter" || Type == "gauge" ||
                    Type == "histogram")
            << Line;
        EXPECT_FALSE(C >> Extra) << Line;
      }
      continue;
    }
    PromSample S;
    std::size_t NameEnd = Line.find_first_of("{ ");
    EXPECT_NE(NameEnd, std::string::npos) << Line;
    if (NameEnd == std::string::npos)
      continue;
    S.Name = Line.substr(0, NameEnd);
    EXPECT_TRUE(isLegalMetricName(S.Name)) << Line;
    std::size_t ValueBegin = NameEnd;
    if (Line[NameEnd] == '{') {
      std::size_t Close = Line.find('}', NameEnd);
      EXPECT_NE(Close, std::string::npos) << Line;
      if (Close == std::string::npos)
        continue;
      S.Labels = Line.substr(NameEnd + 1, Close - NameEnd - 1);
      ValueBegin = Close + 1;
    }
    EXPECT_LT(ValueBegin, Line.size()) << Line;
    EXPECT_EQ(Line[ValueBegin], ' ') << Line;
    const char *Num = Line.c_str() + ValueBegin + 1;
    char *End = nullptr;
    S.Value = std::strtod(Num, &End);
    EXPECT_NE(End, Num) << Line;
    EXPECT_EQ(*End, '\0') << "trailing junk: " << Line;
    Samples.push_back(std::move(S));
  }
  return Samples;
}

/// The `le` bound of a histogram bucket sample, as written (e.g. "+Inf").
std::string leOf(const PromSample &S) {
  std::size_t Eq = S.Labels.find("le=\"");
  if (Eq == std::string::npos)
    return "";
  std::size_t End = S.Labels.find('"', Eq + 4);
  return S.Labels.substr(Eq + 4, End - (Eq + 4));
}

//===----------------------------------------------------------------------===//
// LatencyHistogram: the accessors the exporter is built on.
//===----------------------------------------------------------------------===//

TEST(LatencyHistogram, EmptyExportsAllZero) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sumMicros(), 0u);
  EXPECT_EQ(H.maxMicros(), 0u);
  for (unsigned I = 0; I != LatencyHistogram::NumBuckets; ++I)
    EXPECT_EQ(H.bucketCount(I), 0u) << "bucket " << I;
  // Out-of-range buckets read as empty rather than UB.
  EXPECT_EQ(H.bucketCount(LatencyHistogram::NumBuckets), 0u);
  EXPECT_EQ(H.bucketCount(~0u), 0u);
  EXPECT_EQ(H.percentileMicros(50), 0u);
}

TEST(LatencyHistogram, SingleSampleLandsInOneBucket) {
  LatencyHistogram H;
  H.record(100); // 64 <= 100 < 128 -> bucket 7, bound 128
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.sumMicros(), 100u);
  EXPECT_EQ(H.maxMicros(), 100u);
  unsigned Hot = LatencyHistogram::bucketOf(100);
  EXPECT_EQ(Hot, 7u);
  EXPECT_EQ(LatencyHistogram::bucketBoundMicros(Hot), 128u);
  for (unsigned I = 0; I != LatencyHistogram::NumBuckets; ++I)
    EXPECT_EQ(H.bucketCount(I), I == Hot ? 1u : 0u) << "bucket " << I;
  // Every quantile of a one-sample population is that sample's bucket.
  EXPECT_EQ(H.percentileMicros(1), 128u);
  EXPECT_EQ(H.percentileMicros(50), 128u);
  EXPECT_EQ(H.percentileMicros(100), 128u);
}

TEST(LatencyHistogram, HugeSamplesSaturateTheOverflowBucket) {
  LatencyHistogram H;
  const unsigned Overflow = LatencyHistogram::NumBuckets - 1;
  // Smallest value past the last finite bound, and the largest possible.
  H.record(std::uint64_t(1) << (LatencyHistogram::NumBuckets - 2));
  H.record(~std::uint64_t(0));
  EXPECT_EQ(H.bucketCount(Overflow), 2u);
  EXPECT_EQ(H.count(), 2u);
  EXPECT_EQ(H.maxMicros(), ~std::uint64_t(0));
  // The overflow bucket reports the last finite bound, keeping the
  // cumulative `le` series monotone.
  EXPECT_EQ(LatencyHistogram::bucketBoundMicros(Overflow),
            LatencyHistogram::bucketBoundMicros(Overflow - 1));
  EXPECT_EQ(H.percentileMicros(99),
            LatencyHistogram::bucketBoundMicros(Overflow));
}

TEST(LatencyHistogram, MergeFoldsThreadShardsExactly) {
  // The per-thread-shard aggregation path: each thread records into its
  // own histogram, then all shards merge into one.
  constexpr unsigned Threads = 4, PerThread = 5000;
  std::vector<LatencyHistogram> Shards(Threads);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&Shards, T] {
      for (unsigned I = 0; I != PerThread; ++I)
        Shards[T].record(T * 1000 + I % 7);
    });
  for (std::thread &Th : Pool)
    Th.join();

  LatencyHistogram Merged;
  std::uint64_t WantSum = 0, WantMax = 0;
  for (unsigned T = 0; T != Threads; ++T) {
    Merged.merge(Shards[T]);
    WantSum += Shards[T].sumMicros();
    WantMax = std::max(WantMax, Shards[T].maxMicros());
  }
  EXPECT_EQ(Merged.count(), std::uint64_t(Threads) * PerThread);
  EXPECT_EQ(Merged.sumMicros(), WantSum);
  EXPECT_EQ(Merged.maxMicros(), WantMax);
  for (unsigned I = 0; I != LatencyHistogram::NumBuckets; ++I) {
    std::uint64_t Want = 0;
    for (unsigned T = 0; T != Threads; ++T)
      Want += Shards[T].bucketCount(I);
    EXPECT_EQ(Merged.bucketCount(I), Want) << "bucket " << I;
  }
}

//===----------------------------------------------------------------------===//
// Name sanitization.
//===----------------------------------------------------------------------===//

TEST(Prometheus, NamesAreSanitizedAndPrefixed) {
  using observe::prometheusName;
  EXPECT_EQ(prometheusName("service.read_lat_us"),
            "ipse_service_read_lat_us");
  EXPECT_EQ(prometheusName("a-b.c"), "ipse_a_b_c");
  EXPECT_EQ(prometheusName("already_ok:sub"), "ipse_already_ok:sub");
  EXPECT_EQ(prometheusName(""), "ipse_");
  EXPECT_TRUE(isLegalMetricName(prometheusName("weird name!{}\"")));
}

//===----------------------------------------------------------------------===//
// prometheusText: format validity and histogram semantics.
//===----------------------------------------------------------------------===//

TEST(Prometheus, EmptyRegistryRendersEmpty) {
  observe::MetricsRegistry Reg;
  EXPECT_EQ(observe::prometheusText(Reg), "");
}

TEST(Prometheus, ScalarsRenderAsTypedSamples) {
  observe::MetricsRegistry Reg;
  Reg.counter("service.edits").add(12);
  Reg.gauge("queue.depth").set(-3);

  std::string Text = observe::prometheusText(Reg);
  std::vector<PromSample> Samples = parsePromText(Text);
  ASSERT_EQ(Samples.size(), 2u) << Text;

  std::map<std::string, double> ByName;
  for (const PromSample &S : Samples)
    ByName[S.Name] = S.Value;
  EXPECT_EQ(ByName.at("ipse_service_edits"), 12.0);
  EXPECT_EQ(ByName.at("ipse_queue_depth"), -3.0);
  EXPECT_NE(Text.find("# TYPE ipse_service_edits counter\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("# TYPE ipse_queue_depth gauge\n"), std::string::npos)
      << Text;
}

TEST(Prometheus, HistogramsAreCumulativeAndMonotone) {
  observe::MetricsRegistry Reg;
  LatencyHistogram &H = Reg.histogram("flush_us");
  H.record(0);   // bucket 0 (le 1)
  H.record(3);   // bucket 2 (le 4)
  H.record(3);   // bucket 2
  H.record(100); // bucket 7 (le 128)

  std::string Text = observe::prometheusText(Reg);
  EXPECT_NE(Text.find("# TYPE ipse_flush_us histogram\n"), std::string::npos)
      << Text;

  std::vector<PromSample> Samples = parsePromText(Text);
  std::vector<PromSample> Buckets;
  double Sum = -1, Count = -1;
  for (const PromSample &S : Samples) {
    if (S.Name == "ipse_flush_us_bucket")
      Buckets.push_back(S);
    else if (S.Name == "ipse_flush_us_sum")
      Sum = S.Value;
    else if (S.Name == "ipse_flush_us_count")
      Count = S.Value;
    else
      ADD_FAILURE() << "unexpected sample " << S.Name;
  }
  EXPECT_EQ(Sum, 106.0);
  EXPECT_EQ(Count, 4.0);

  // Buckets: cumulative, bounds strictly increasing, trailing empties
  // dropped, +Inf last and equal to _count.
  ASSERT_GE(Buckets.size(), 2u);
  EXPECT_EQ(leOf(Buckets.back()), "+Inf");
  EXPECT_EQ(Buckets.back().Value, Count);
  double PrevBound = -1, PrevCum = -1;
  for (std::size_t I = 0; I + 1 < Buckets.size(); ++I) {
    double Bound = std::strtod(leOf(Buckets[I]).c_str(), nullptr);
    EXPECT_GT(Bound, PrevBound);
    EXPECT_GE(Buckets[I].Value, PrevCum);
    PrevBound = Bound;
    PrevCum = Buckets[I].Value;
  }
  // The last finite bucket is the highest non-empty one: bound 128,
  // cumulative 4.
  ASSERT_GE(Buckets.size(), 2u);
  const PromSample &LastFinite = Buckets[Buckets.size() - 2];
  EXPECT_EQ(leOf(LastFinite), "128");
  EXPECT_EQ(LastFinite.Value, 4.0);
}

TEST(Prometheus, EmptyHistogramStillExportsInfSumCount) {
  observe::MetricsRegistry Reg;
  Reg.histogram("idle_us");
  std::string Text = observe::prometheusText(Reg);
  std::vector<PromSample> Samples = parsePromText(Text);

  bool SawInf = false, SawSum = false, SawCount = false;
  for (const PromSample &S : Samples) {
    if (S.Name == "ipse_idle_us_bucket" && leOf(S) == "+Inf") {
      SawInf = true;
      EXPECT_EQ(S.Value, 0.0);
    } else if (S.Name == "ipse_idle_us_sum") {
      SawSum = true;
      EXPECT_EQ(S.Value, 0.0);
    } else if (S.Name == "ipse_idle_us_count") {
      SawCount = true;
      EXPECT_EQ(S.Value, 0.0);
    }
  }
  EXPECT_TRUE(SawInf) << Text;
  EXPECT_TRUE(SawSum) << Text;
  EXPECT_TRUE(SawCount) << Text;
}

//===----------------------------------------------------------------------===//
// Labeled series: the registry facility and the exporter's label blocks.
//===----------------------------------------------------------------------===//

TEST(Metrics, LabeledNameBuildsAndSanitizes) {
  using observe::MetricsRegistry;
  EXPECT_EQ(MetricsRegistry::labeledName("tenant.edits", "tenant", "acme"),
            "tenant.edits{tenant=acme}");
  // Values outside the registry's name alphabet are defanged, so a
  // hostile tenant name cannot corrupt the JSON or Prometheus output.
  EXPECT_EQ(MetricsRegistry::labeledName("t.c", "k", "a\"b{c}d e"),
            "t.c{k=a_b_c_d_e}");
}

TEST(Metrics, LabeledOverloadsAreGetOrCreate) {
  observe::MetricsRegistry Reg;
  observe::Counter &A = Reg.counter("tenant.edits", "tenant", "acme");
  A.add(3);
  // Same (base, key, value) -> same series; the string form aliases it.
  EXPECT_EQ(&Reg.counter("tenant.edits", "tenant", "acme"), &A);
  EXPECT_EQ(&Reg.counter("tenant.edits{tenant=acme}"), &A);
  EXPECT_EQ(Reg.counter("tenant.edits", "tenant", "acme").value(), 3u);
  // A different label value is a different series.
  EXPECT_NE(&Reg.counter("tenant.edits", "tenant", "beta"), &A);
}

TEST(Metrics, SnapshotIsSortedByName) {
  observe::MetricsRegistry Reg;
  Reg.counter("zz.last").add();
  Reg.counter("aa.first").add();
  Reg.counter("mm.mid", "tenant", "x").add();
  Reg.gauge("z.g").set(1);
  Reg.gauge("a.g").set(2);
  observe::MetricsSnapshot Snap = Reg.snapshot();
  auto SortedBy = [](const auto &V) {
    return std::is_sorted(V.begin(), V.end(),
                          [](const auto &A, const auto &B) {
                            return A.first < B.first;
                          });
  };
  EXPECT_TRUE(SortedBy(Snap.Counters));
  EXPECT_TRUE(SortedBy(Snap.Gauges));
  EXPECT_TRUE(SortedBy(Snap.Histograms));
}

TEST(Prometheus, LabeledSeriesRenderAsLabelBlocks) {
  observe::MetricsRegistry Reg;
  Reg.counter("tenant.edits", "tenant", "acme").add(3);
  Reg.counter("tenant.edits", "tenant", "beta").add(5);
  Reg.gauge("tenant.resident", "tenant", "acme").set(1);

  std::string Text = observe::prometheusText(Reg);
  std::vector<PromSample> Samples = parsePromText(Text);
  std::map<std::string, double> ByKey;
  for (const PromSample &S : Samples)
    ByKey[S.Name + "{" + S.Labels + "}"] = S.Value;
  EXPECT_EQ(ByKey.at("ipse_tenant_edits{tenant=\"acme\"}"), 3.0);
  EXPECT_EQ(ByKey.at("ipse_tenant_edits{tenant=\"beta\"}"), 5.0);
  EXPECT_EQ(ByKey.at("ipse_tenant_resident{tenant=\"acme\"}"), 1.0);
  // One TYPE line per metric *name*, not per series.
  std::size_t First = Text.find("# TYPE ipse_tenant_edits counter\n");
  ASSERT_NE(First, std::string::npos) << Text;
  EXPECT_EQ(Text.find("# TYPE ipse_tenant_edits counter\n", First + 1),
            std::string::npos)
      << Text;
}

TEST(Prometheus, MultiLabelSuffixSplitsIntoPairs) {
  observe::MetricsRegistry Reg;
  // The build_info idiom: value 1, the data rides in the labels.
  Reg.gauge("build.info{version=0.10,isa=avx2,observe=on}").set(1);
  std::string Text = observe::prometheusText(Reg);
  EXPECT_NE(
      Text.find(
          "ipse_build_info{version=\"0.10\",isa=\"avx2\",observe=\"on\"} 1"),
      std::string::npos)
      << Text;
  parsePromText(Text); // Line-level validity.
}

TEST(Prometheus, TenantServiceExportsPerTenantSeries) {
  // Two live tenants must show up as distinct labeled series on the
  // *global* registry (what `metrics --format=prom` serves).  Counters
  // are cumulative across tests sharing the registry, so assert floors
  // and label presence, not exact totals.
  tenant::TenantOptions Opts;
  Opts.Shards = 2;
  tenant::TenantService Svc(Opts);
  ASSERT_TRUE(Svc.call("", "open acme procs=5 globals=3 seed=1").Ok);
  ASSERT_TRUE(Svc.call("", "open beta procs=4 globals=2 seed=2").Ok);
  ASSERT_TRUE(Svc.call("acme", "add-global g_extra").Ok);
  ASSERT_TRUE(Svc.call("acme", "gmod main").Ok);
  ASSERT_TRUE(Svc.call("beta", "gmod main").Ok);
  service::Response R = Svc.call("", "metrics --format=prom");
  ASSERT_TRUE(R.Ok);

  std::vector<PromSample> Samples = parsePromText(R.Result);
  double AcmeEdits = -1, AcmeQ = -1, BetaQ = -1, AcmeRes = -1, BetaRes = -1,
         AcmeBacklog = -1;
  for (const PromSample &S : Samples) {
    if (S.Name == "ipse_tenant_edits" && S.Labels == "tenant=\"acme\"")
      AcmeEdits = S.Value;
    if (S.Name == "ipse_tenant_queries" && S.Labels == "tenant=\"acme\"")
      AcmeQ = S.Value;
    if (S.Name == "ipse_tenant_queries" && S.Labels == "tenant=\"beta\"")
      BetaQ = S.Value;
    if (S.Name == "ipse_tenant_resident" && S.Labels == "tenant=\"acme\"")
      AcmeRes = S.Value;
    if (S.Name == "ipse_tenant_resident" && S.Labels == "tenant=\"beta\"")
      BetaRes = S.Value;
    if (S.Name == "ipse_tenant_edit_backlog" && S.Labels == "tenant=\"acme\"")
      AcmeBacklog = S.Value;
  }
  EXPECT_GE(AcmeEdits, 1.0) << R.Result;
  EXPECT_GE(AcmeQ, 1.0) << R.Result;
  EXPECT_GE(BetaQ, 1.0) << R.Result;
  EXPECT_EQ(AcmeRes, 1.0) << R.Result;
  EXPECT_EQ(BetaRes, 1.0) << R.Result;
  // The backlog gauge is decremented *after* the edit's response is
  // delivered, so a scrape right behind a synchronous call may still see
  // the in-flight edit; assert the labeled series exists, not its value.
  EXPECT_GE(AcmeBacklog, 0.0) << R.Result;
  Svc.stop();
}

TEST(Prometheus, FullRegistryPassesTheLineChecker) {
  observe::MetricsRegistry Reg;
  Reg.counter("reads").add(7);
  Reg.counter("service.writes").add(1);
  Reg.gauge("snapshot.gen").set(42);
  Reg.histogram("service.read_lat_us").record(250);
  Reg.histogram("service.write_lat_us").record(9000);

  std::string Text = observe::prometheusText(Reg);
  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.back(), '\n');
  std::vector<PromSample> Samples = parsePromText(Text);
  // 2 counters + 1 gauge + 2 histograms of >= 3 samples each.
  EXPECT_GE(Samples.size(), 9u) << Text;
}

} // namespace
