//===- tests/observe_test.cpp - Observability layer tests ---------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The tracing/metrics layer: span nesting and delivery, CostReport
// aggregation, the JSON-lines sink round-trip, registry thread-safety,
// and — the load-bearing property — that observing an analysis never
// changes its results, on any engine, and that the ipse::Analyzer facade
// renders byte-identical reports on every engine with profiling on or off.
//
// Span-content assertions are guarded on observe::enabled() so the suite
// also passes under -DIPSE_OBSERVE=OFF, where spans compile to nothing.
//
//===----------------------------------------------------------------------===//

#include "SolverMatrix.h"
#include "api/Ipse.h"
#include "observe/CostReport.h"
#include "observe/Metrics.h"
#include "observe/Trace.h"
#include "support/Json.h"
#include "synth/ProgramGen.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace ipse;
using analysis::EffectKind;

namespace {

/// A sink that just remembers every closed span.
struct CollectingSink : observe::TraceSink {
  std::vector<observe::SpanRecord> Records;
  void onSpan(const observe::SpanRecord &R) override { Records.push_back(R); }
};

//===----------------------------------------------------------------------===//
// Spans and scopes.
//===----------------------------------------------------------------------===//

TEST(Trace, SpansNestAndCloseInnermostFirst) {
  if (!observe::enabled())
    GTEST_SKIP() << "built with IPSE_OBSERVE=OFF";
  CollectingSink Sink;
  {
    observe::TraceScope Scope(nullptr, &Sink);
    observe::TraceSpan Outer("outer");
    { observe::TraceSpan Inner("inner"); }
    { observe::TraceSpan Inner("inner"); }
  }
  ASSERT_EQ(Sink.Records.size(), 3u);
  EXPECT_STREQ(Sink.Records[0].Name, "inner");
  EXPECT_EQ(Sink.Records[0].Depth, 1u);
  EXPECT_STREQ(Sink.Records[1].Name, "inner");
  EXPECT_EQ(Sink.Records[1].Depth, 1u);
  EXPECT_STREQ(Sink.Records[2].Name, "outer");
  EXPECT_EQ(Sink.Records[2].Depth, 0u);
  // A span's window covers its children.
  EXPECT_GE(Sink.Records[2].WallNs,
            Sink.Records[0].WallNs + Sink.Records[1].WallNs);
}

TEST(Trace, NoScopeMeansNoDelivery) {
  if (!observe::enabled())
    GTEST_SKIP() << "built with IPSE_OBSERVE=OFF";
  // No TraceScope installed: spans must be inert (and must not crash).
  observe::TraceSpan S("orphan");
  S.closeNow();
  observe::ManualSpan M("orphan");
  M.close();
  observe::addCounter("orphan", 1);
}

TEST(Trace, ManualSpanClosesExactlyOnce) {
  if (!observe::enabled())
    GTEST_SKIP() << "built with IPSE_OBSERVE=OFF";
  CollectingSink Sink;
  {
    observe::TraceScope Scope(nullptr, &Sink);
    observe::ManualSpan M("phase");
    M.close();
    M.close(); // idempotent; the destructor must not re-emit either
  }
  ASSERT_EQ(Sink.Records.size(), 1u);
  EXPECT_STREQ(Sink.Records[0].Name, "phase");
}

TEST(Trace, ScopesShadowAndRestore) {
  if (!observe::enabled())
    GTEST_SKIP() << "built with IPSE_OBSERVE=OFF";
  CollectingSink OuterSink, InnerSink;
  {
    observe::TraceScope Outer(nullptr, &OuterSink);
    {
      observe::TraceScope Inner(nullptr, &InnerSink);
      observe::TraceSpan S("shadowed");
    }
    observe::TraceSpan S("restored");
  }
  ASSERT_EQ(InnerSink.Records.size(), 1u);
  EXPECT_STREQ(InnerSink.Records[0].Name, "shadowed");
  ASSERT_EQ(OuterSink.Records.size(), 1u);
  EXPECT_STREQ(OuterSink.Records[0].Name, "restored");
}

//===----------------------------------------------------------------------===//
// CostReport (plain data, compiled under OFF as well).
//===----------------------------------------------------------------------===//

TEST(CostReport, AggregatesByPhaseName) {
  observe::CostReport R;
  observe::SpanRecord A;
  A.Name = "gmod";
  A.WallNs = 100;
  A.BitOps = 5;
  R.addSpan(A);
  R.addSpan(A);
  observe::SpanRecord B;
  B.Name = "rmod";
  B.WallNs = 40;
  R.addSpan(B);
  R.addCounter("steps", 3);
  R.addCounter("steps", 4);

  ASSERT_NE(R.phase("gmod"), nullptr);
  EXPECT_EQ(R.phase("gmod")->Count, 2u);
  EXPECT_EQ(R.phase("gmod")->WallNs, 200u);
  EXPECT_EQ(R.phase("gmod")->BitOps, 10u);
  EXPECT_EQ(R.phase("missing"), nullptr);
  EXPECT_EQ(R.counter("steps"), 7u);
  EXPECT_EQ(R.counter("missing"), 0u);

  observe::CostReport Other;
  Other.addSpan(A);
  Other.addCounter("steps", 10);
  R.merge(Other);
  EXPECT_EQ(R.phase("gmod")->Count, 3u);
  EXPECT_EQ(R.counter("steps"), 17u);

  // Rows keep first-seen order (pipeline order for one thread).
  ASSERT_EQ(R.phases().size(), 2u);
  EXPECT_EQ(R.phases()[0].Name, "gmod");
  EXPECT_EQ(R.phases()[1].Name, "rmod");

  std::string Text = R.toText();
  EXPECT_NE(Text.find("gmod"), std::string::npos);
  EXPECT_NE(Text.find("steps"), std::string::npos);
  std::string Json = R.toJson();
  EXPECT_NE(Json.find("\"phases\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"gmod\""), std::string::npos);
  EXPECT_NE(Json.find("\"steps\":17"), std::string::npos);
}

TEST(CostReport, ScopeAccumulatesSpansAndCounters) {
  observe::CostReport R;
  {
    observe::TraceScope Scope(&R);
    { observe::TraceSpan S("alpha"); }
    { observe::TraceSpan S("alpha"); }
    observe::addCounter("beta", 21);
  }
  if (!observe::enabled()) {
    EXPECT_TRUE(R.empty());
    return;
  }
  ASSERT_NE(R.phase("alpha"), nullptr);
  EXPECT_EQ(R.phase("alpha")->Count, 2u);
  EXPECT_EQ(R.counter("beta"), 21u);
}

//===----------------------------------------------------------------------===//
// Metrics registry (functional even under OFF).
//===----------------------------------------------------------------------===//

TEST(Metrics, CountersAreMonotoneUnderThreads) {
  observe::MetricsRegistry Reg;
  constexpr unsigned Threads = 4, PerThread = 10000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&Reg] {
      // get-or-create races on the same name must hand back one counter.
      observe::Counter &C = Reg.counter("test.events");
      for (unsigned I = 0; I != PerThread; ++I)
        C.add();
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Reg.counter("test.events").value(),
            std::uint64_t(Threads) * PerThread);
}

TEST(Metrics, ReferencesStayStableAcrossRegistrations) {
  observe::MetricsRegistry Reg;
  observe::Counter &A = Reg.counter("a");
  A.add(7);
  for (int I = 0; I != 100; ++I)
    Reg.counter("fill." + std::to_string(I));
  EXPECT_EQ(&A, &Reg.counter("a"));
  EXPECT_EQ(Reg.counter("a").value(), 7u);
}

TEST(Metrics, GaugesHistogramsAndJson) {
  observe::MetricsRegistry Reg;
  Reg.counter("c").add(3);
  Reg.gauge("g").set(-5);
  Reg.gauge("g").add(2);
  Reg.histogram("h").record(100);
  Reg.histogram("h").record(200);

  std::string Json = Reg.toJson();
  EXPECT_NE(Json.find("\"c\":3"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"g\":-3"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"h\":{"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"count\":2"), std::string::npos) << Json;
}

//===----------------------------------------------------------------------===//
// JSON-lines sink round-trip.
//===----------------------------------------------------------------------===//

TEST(JsonLinesSink, RoundTripsThroughTheFlatJsonParser) {
  if (!observe::enabled())
    GTEST_SKIP() << "built with IPSE_OBSERVE=OFF";
  std::string Path = testing::TempDir() + "/ipse_observe_trace.jsonl";
  std::string Error;
  std::unique_ptr<observe::JsonLinesSink> Sink =
      observe::JsonLinesSink::open(Path, Error);
  ASSERT_NE(Sink, nullptr) << Error;
  {
    observe::TraceScope Scope(nullptr, Sink.get());
    { observe::TraceSpan S("alpha"); }
    { observe::TraceSpan S("beta"); }
  }
  Sink.reset(); // closes the file

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::vector<std::string> Names;
  std::string Line;
  while (std::getline(In, Line)) {
    std::string ParseError;
    std::optional<JsonObject> Obj =
        parseJsonObject(Line, ParseError);
    ASSERT_TRUE(Obj.has_value()) << Line << ": " << ParseError;
    ASSERT_TRUE(Obj->getString("span").has_value()) << Line;
    EXPECT_TRUE(Obj->getUInt("depth").has_value()) << Line;
    EXPECT_TRUE(Obj->getUInt("start_ns").has_value()) << Line;
    EXPECT_TRUE(Obj->getUInt("wall_ns").has_value()) << Line;
    EXPECT_TRUE(Obj->getUInt("bv_ops").has_value()) << Line;
    Names.push_back(*Obj->getString("span"));
  }
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "alpha");
  EXPECT_EQ(Names[1], "beta");
  std::remove(Path.c_str());
}

TEST(JsonLinesSink, OpenFailureReportsError) {
  std::string Error;
  EXPECT_EQ(observe::JsonLinesSink::open("/nonexistent-dir/x.jsonl", Error),
            nullptr);
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Request tags and thread ids on spans.
//===----------------------------------------------------------------------===//

/// SpanRecord.Tags points into the live TraceScope, so a sink that wants
/// them past onSpan() must copy — which is also what this sink asserts.
struct TagCollectingSink : observe::TraceSink {
  struct Row {
    std::string Name;
    std::uint32_t Tid;
    bool Tagged;
    std::string TraceId;
    std::uint64_t Generation;
  };
  std::vector<Row> Rows;
  void onSpan(const observe::SpanRecord &R) override {
    Rows.push_back({R.Name, R.Tid, R.Tags != nullptr,
                    R.Tags ? R.Tags->TraceId : std::string(),
                    R.Tags ? R.Tags->Generation : 0});
  }
};

TEST(Trace, TaggedScopeStampsEverySpan) {
  if (!observe::enabled())
    GTEST_SKIP() << "built with IPSE_OBSERVE=OFF";
  TagCollectingSink Sink;
  {
    observe::TraceScope Scope(nullptr, &Sink,
                              observe::ScopeTags{"req-42", 7, {}});
    observe::TraceSpan Outer("outer");
    { observe::TraceSpan Inner("inner"); }
  }
  {
    // An untagged scope delivers spans with no tags.
    observe::TraceScope Scope(nullptr, &Sink);
    observe::TraceSpan S("untagged");
  }
  ASSERT_EQ(Sink.Rows.size(), 3u);
  for (unsigned I = 0; I != 2; ++I) {
    EXPECT_TRUE(Sink.Rows[I].Tagged) << Sink.Rows[I].Name;
    EXPECT_EQ(Sink.Rows[I].TraceId, "req-42");
    EXPECT_EQ(Sink.Rows[I].Generation, 7u);
    EXPECT_EQ(Sink.Rows[I].Tid, observe::currentTid());
  }
  EXPECT_FALSE(Sink.Rows[2].Tagged);
}

TEST(Trace, CurrentTidIsStablePerThreadAndDistinctAcrossThreads) {
  std::uint32_t Mine = observe::currentTid();
  EXPECT_GT(Mine, 0u);
  EXPECT_EQ(observe::currentTid(), Mine);
  std::uint32_t Other = 0;
  std::thread([&Other] { Other = observe::currentTid(); }).join();
  EXPECT_GT(Other, 0u);
  EXPECT_NE(Other, Mine);
}

//===----------------------------------------------------------------------===//
// Chrome Trace Event sink.
//===----------------------------------------------------------------------===//

std::string slurpFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(ChromeTraceSink, FileIsAValidJsonDocumentAtEveryMoment) {
  if (!observe::enabled())
    GTEST_SKIP() << "built with IPSE_OBSERVE=OFF";
  std::string Path = testing::TempDir() + "/ipse_observe_trace.chrome.json";
  std::string Error;
  std::unique_ptr<observe::ChromeTraceSink> Sink =
      observe::ChromeTraceSink::open(Path, Error);
  ASSERT_NE(Sink, nullptr) << Error;

  // Empty trace: already a well-formed (empty) array.
  std::string Doc = slurpFile(Path);
  EXPECT_TRUE(validateJsonDocument(Doc, Error)) << Error << Doc;

  {
    observe::TraceScope Scope(nullptr, Sink.get(),
                              observe::ScopeTags{"q1", 3, {}});
    { observe::TraceSpan S("alpha"); }
    // Mid-stream, with the sink still open and more spans to come: the
    // file must parse as-is (the crash-durability property).
    Doc = slurpFile(Path);
    EXPECT_TRUE(validateJsonDocument(Doc, Error)) << Error << Doc;
    { observe::TraceSpan S("beta"); }
  }
  Sink.reset();

  Doc = slurpFile(Path);
  ASSERT_TRUE(validateJsonDocument(Doc, Error)) << Error << Doc;
  // Complete events with the span names, thread id, and request tags.
  EXPECT_NE(Doc.find("\"name\":\"alpha\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"name\":\"beta\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"ph\":\"X\""), std::string::npos) << Doc;
  std::string Tid = "\"tid\":" + std::to_string(observe::currentTid());
  EXPECT_NE(Doc.find(Tid), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"trace\":\"q1\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"gen\":3"), std::string::npos) << Doc;
  std::remove(Path.c_str());
}

TEST(ChromeTraceSink, HostileTraceIdsAreEscapedOut) {
  if (!observe::enabled())
    GTEST_SKIP() << "built with IPSE_OBSERVE=OFF";
  std::string Path = testing::TempDir() + "/ipse_observe_hostile.chrome.json";
  std::string Error;
  std::unique_ptr<observe::ChromeTraceSink> Sink =
      observe::ChromeTraceSink::open(Path, Error);
  ASSERT_NE(Sink, nullptr) << Error;
  {
    // A wire-supplied id full of JSON-breaking characters must not be
    // able to corrupt the document.
    observe::TraceScope Scope(
        nullptr, Sink.get(),
        observe::ScopeTags{"a\"b\\c\nd\te}", 1, {}});
    observe::TraceSpan S("hostile");
  }
  Sink.reset();
  std::string Doc = slurpFile(Path);
  EXPECT_TRUE(validateJsonDocument(Doc, Error)) << Error << Doc;
  EXPECT_NE(Doc.find("\"trace\":\"abcde}\""), std::string::npos) << Doc;
  std::remove(Path.c_str());
}

TEST(ChromeTraceSink, OpenFailureReportsError) {
  std::string Error;
  EXPECT_EQ(observe::ChromeTraceSink::open("/nonexistent-dir/x.json", Error),
            nullptr);
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// The differential guarantee: observing never changes results.
//===----------------------------------------------------------------------===//

TEST(ObserveDifferential, TracedRunsMatchUntracedOnEveryEngine) {
  synth::ProgramGenConfig Cfg;
  Cfg.NumProcs = 24;
  Cfg.NumGlobals = 8;
  Cfg.Seed = 7;
  Cfg.MaxNestDepth = 3;
  ir::Program P = synth::generateProgram(Cfg);

  for (const testmatrix::SolverEngine &E : testmatrix::allSolverEngines()) {
    if (E.TwoLevelOnly && P.maxProcLevel() > 1)
      continue;
    for (EffectKind K : {EffectKind::Mod, EffectKind::Use}) {
      analysis::GModResult Plain = E.Solve(P, K);
      observe::CostReport Costs;
      CollectingSink Sink;
      analysis::GModResult Traced = [&] {
        observe::TraceScope Scope(&Costs, &Sink);
        return E.Solve(P, K);
      }();
      ASSERT_EQ(Plain.GMod.size(), Traced.GMod.size()) << E.Name;
      for (std::size_t I = 0; I != Plain.GMod.size(); ++I)
        EXPECT_EQ(Plain.GMod[I], Traced.GMod[I])
            << E.Name << " proc " << I << " kind "
            << (K == EffectKind::Mod ? "mod" : "use");
    }
  }
}

//===----------------------------------------------------------------------===//
// The facade.
//===----------------------------------------------------------------------===//

TEST(Facade, ReportsByteIdenticalAcrossEnginesAndProfiling) {
  synth::ProgramGenConfig Cfg;
  Cfg.NumProcs = 16;
  Cfg.NumGlobals = 6;
  Cfg.Seed = 11;
  Cfg.MaxNestDepth = 2;
  ir::Program P = synth::generateProgram(Cfg);
  analysis::ReportOptions RO;
  RO.IncludeRMod = true;
  const std::string Baseline = analysis::makeReport(P, RO);

  using Engine = ipse::AnalysisOptions::Engine;
  for (Engine E : {Engine::Sequential, Engine::Parallel, Engine::Session}) {
    for (bool Profile : {false, true}) {
      ipse::AnalysisOptions O;
      O.Backend = E;
      if (E == Engine::Parallel)
        O.Threads = 3;
      O.Profile = Profile;
      ipse::ReportRun Run = ipse::Analyzer(O).report(P, RO);
      EXPECT_TRUE(Run.Ok);
      EXPECT_EQ(Run.Output, Baseline)
          << "engine " << int(E) << " profile " << Profile;
      if (Profile && observe::enabled()) {
        EXPECT_NE(Run.Costs.phase("report"), nullptr);
      }
      if (!Profile) {
        EXPECT_TRUE(Run.Costs.empty());
      }
    }
  }
}

TEST(Facade, AnalyzeAnswersTheSameQueriesOnEveryEngine) {
  synth::ProgramGenConfig Cfg;
  Cfg.NumProcs = 12;
  Cfg.NumGlobals = 5;
  Cfg.Seed = 3;
  Cfg.MaxNestDepth = 2;
  ir::Program P = synth::generateProgram(Cfg);

  ipse::AnalysisOptions SeqO;
  SeqO.Backend = ipse::AnalysisOptions::Engine::Sequential;
  ipse::Analysis Seq = ipse::Analyzer(SeqO).analyze(P);

  using Engine = ipse::AnalysisOptions::Engine;
  for (Engine E : {Engine::Parallel, Engine::Session}) {
    ipse::AnalysisOptions O;
    O.Backend = E;
    O.Threads = 2;
    ipse::Analysis A = ipse::Analyzer(O).analyze(P);
    EXPECT_EQ(A.engine(), E);
    for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
      ir::ProcId Proc(I);
      EXPECT_EQ(A.gmod(Proc), Seq.gmod(Proc)) << "proc " << I;
      EXPECT_EQ(A.guse(Proc), Seq.guse(Proc)) << "proc " << I;
      EXPECT_EQ(A.setToString(A.gmod(Proc)), Seq.setToString(Seq.gmod(Proc)));
    }
    for (std::uint32_t I = 0; I != P.numCallSites(); ++I) {
      ir::CallSiteId C(I);
      EXPECT_EQ(A.dmod(C), Seq.dmod(C)) << "site " << I;
      EXPECT_EQ(A.dmod(C, EffectKind::Use), Seq.dmod(C, EffectKind::Use));
    }
  }
}

TEST(Facade, AutoResolvesByThreadCount) {
  ipse::AnalysisOptions O;
  EXPECT_EQ(O.resolved(), ipse::AnalysisOptions::Engine::Sequential);
  O.Threads = 4;
  EXPECT_EQ(O.resolved(), ipse::AnalysisOptions::Engine::Parallel);
  O.Backend = ipse::AnalysisOptions::Engine::Session;
  EXPECT_EQ(O.resolved(), ipse::AnalysisOptions::Engine::Session);
}

TEST(Facade, ProfiledAnalyzeCollectsPhases) {
  synth::ProgramGenConfig Cfg;
  Cfg.NumProcs = 10;
  Cfg.Seed = 5;
  ir::Program P = synth::generateProgram(Cfg);
  ipse::AnalysisOptions O;
  O.Profile = true;
  ipse::Analysis A = ipse::Analyzer(O).analyze(P);
  if (!observe::enabled()) {
    EXPECT_TRUE(A.costs().empty());
    return;
  }
  for (const char *Phase : {"graphs", "local", "rmod", "imodplus", "gmod"})
    EXPECT_NE(A.costs().phase(Phase), nullptr) << Phase;
  EXPECT_GT(A.costs().counter("rmod.boolean_steps"), 0u);
}

TEST(Facade, ReportSourceSurfacesDiagnostics) {
  ipse::Analyzer An;
  ipse::ReportRun Bad = An.reportSource("proc p { this is not miniproc");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_TRUE(Bad.Output.empty());
  EXPECT_FALSE(Bad.Diagnostics.empty());

  ipse::ReportRun Good = An.reportSource("program main;\n"
                                         "var g;\n"
                                         "proc p();\n"
                                         "  begin\n"
                                         "    g := 0;\n"
                                         "  end;\n"
                                         "begin\n"
                                         "  call p();\n"
                                         "end.\n");
  EXPECT_TRUE(Good.Ok) << Good.Diagnostics;
  EXPECT_NE(Good.Output.find("GMOD = { g }"), std::string::npos)
      << Good.Output;
}

TEST(Facade, SessionScriptRunsAndPrintsMetrics) {
  std::string Path = testing::TempDir() + "/ipse_observe_script_out.txt";
  std::FILE *Out = std::fopen(Path.c_str(), "w+");
  ASSERT_NE(Out, nullptr);
  ipse::AnalysisOptions O;
  O.Profile = true;
  observe::CostReport Costs;
  int Exit = ipse::Analyzer(O).runSessionScript(
      "gen procs=6 globals=4 seed=1\n"
      "gmod p0\n"
      "check\n"
      "metrics\n"
      "stats\n",
      Out, &Costs);
  EXPECT_EQ(Exit, 0);
  std::fflush(Out);
  std::fclose(Out);
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Text = SS.str();
  EXPECT_NE(Text.find("GMOD(p0)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("\"counters\""), std::string::npos) << Text;
  EXPECT_NE(Text.find("edits 0"), std::string::npos) << Text;
  std::remove(Path.c_str());
}

TEST(Facade, SessionScriptErrorsReturnNonZero) {
  std::FILE *Out = std::fopen("/dev/null", "w");
  ASSERT_NE(Out, nullptr);
  ipse::Analyzer An;
  // Query before any program is loaded.
  EXPECT_EQ(An.runSessionScript("gmod p0\n", Out), 1);
  // Unknown command.
  EXPECT_EQ(An.runSessionScript("gen procs=2\nfrobnicate\n", Out), 1);
  std::fclose(Out);
}

} // namespace
