//===- tests/multilevel_adversarial_test.cpp - Targeted §4 topologies ---------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The combined §4 algorithm's per-problem Tarjan bookkeeping (single-slot
// lowlink updates + suffix-min correction + prefix stack membership) is
// the subtlest code in the repository.  Each test here builds a topology
// chosen to stress one specific interaction — forward edges to nodes whose
// deep-level components already closed, cross edges between sibling
// subtrees, lowlink evidence arriving only through a shallower-level slot,
// towers closing several levels at one exit — and checks the combined
// variant against both the repeated variant and the equation-(1) oracle.
//
//===----------------------------------------------------------------------===//

#include "analysis/IModPlus.h"
#include "analysis/LocalEffects.h"
#include "analysis/MultiLevelGMod.h"
#include "analysis/RMod.h"
#include "baselines/IterativeSolver.h"
#include "graph/BindingGraph.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace ipse;
using namespace ipse::analysis;
using namespace ipse::ir;

namespace {

/// Runs all three GMOD solvers and requires identical answers.
void expectAllAgree(const Program &P) {
  VarMasks Masks(P);
  graph::CallGraph CG(P);
  graph::BindingGraph BG(P);
  LocalEffects Local(P, Masks, EffectKind::Mod);
  RModResult RMod = solveRMod(P, BG, Local);
  std::vector<EffectSet> Plus = computeIModPlus(P, Local, RMod);

  GModResult Rep = solveMultiLevelRepeated(P, CG, Masks, Plus);
  GModResult Com = solveMultiLevelCombined(P, CG, Masks, Plus);
  baselines::IterativeResult Oracle =
      baselines::solveIterative(P, CG, Masks, Local);

  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    EXPECT_EQ(Com.GMod[I], Rep.GMod[I])
        << "combined vs repeated at " << P.name(ProcId(I));
    EXPECT_EQ(Com.GMod[I], Oracle.GMod.GMod[I])
        << "combined vs oracle at " << P.name(ProcId(I));
  }
}

/// A convenience kit for building nested topologies tersely.
struct Kit {
  ProgramBuilder B;
  ProcId Main;
  VarId G;

  Kit() {
    Main = B.createMain("main");
    G = B.addGlobal("g");
  }

  ProcId proc(const char *Name, ProcId Parent) {
    ProcId P = B.createProc(Name, Parent);
    return P;
  }

  VarId local(ProcId P, const char *Name) { return B.addLocal(P, Name); }

  void mod(ProcId P, VarId V) { B.addMod(B.addStmt(P), V); }
  void call(ProcId From, ProcId To) { B.addCallStmt(From, To, {}); }
};

TEST(MultiLevelAdversarial, ForwardEdgeToClosedDeepComponent) {
  // main -> outer; outer -> a -> b, then a forward-ish edge outer -> b
  // after b's level-2 component has closed; b modifies outer's local.
  Kit K;
  ProcId Outer = K.proc("outer", K.Main);
  VarId OV = K.local(Outer, "ov");
  ProcId A = K.proc("a", Outer);
  ProcId Bp = K.proc("b", Outer);
  K.mod(Bp, OV);
  K.mod(Bp, K.G);
  K.call(Outer, A);
  K.call(A, Bp);
  K.call(Outer, Bp); // Second in edge order: b already visited and closed.
  K.call(K.Main, Outer);
  expectAllAgree(K.B.finish());
}

TEST(MultiLevelAdversarial, CrossEdgeBetweenSiblingSubtrees) {
  // Two siblings under outer; s1's subtree finishes, then s2 cross-calls
  // into it.  The cross edge's target is closed at level 2 but the level-1
  // component (via a back edge to outer) is still open.
  Kit K;
  ProcId Outer = K.proc("outer", K.Main);
  VarId OV = K.local(Outer, "ov");
  ProcId S1 = K.proc("s1", Outer);
  ProcId S2 = K.proc("s2", Outer);
  K.mod(S1, OV);
  K.mod(S2, K.G);
  K.call(Outer, S1);
  K.call(S1, Outer); // Back edge: outer and s1 share the level-1 SCC.
  K.call(Outer, S2);
  K.call(S2, S1); // Cross edge to the closed-at-level-2 sibling.
  K.call(K.Main, Outer);
  expectAllAgree(K.B.finish());
}

TEST(MultiLevelAdversarial, LowlinkEvidenceOnlyThroughShallowSlot) {
  // The x -> b case analyzed in MultiLevelGMod.cpp: the edge's callee
  // level is 2, but b has already been popped from the level-2 stack, so
  // the lowlink update must land in the deepest still-stacked slot
  // (level 1) or x closes its level-1 component prematurely.
  Kit K;
  ProcId Outer = K.proc("outer", K.Main); // level 1
  VarId OV = K.local(Outer, "ov");
  ProcId Bp = K.proc("b", Outer); // level 2
  ProcId X = K.proc("x", Outer);  // level 2
  K.mod(Bp, K.G);
  K.mod(X, OV);
  K.call(Outer, Bp); // b visited first; its level-2 SCC closes.
  K.call(Bp, Outer); // back edge: b in outer's level-1 SCC.
  K.call(Outer, X);
  K.call(X, Bp); // x's only outgoing edge: must keep x open at level 1.
  K.call(K.Main, Outer);
  expectAllAgree(K.B.finish());
}

TEST(MultiLevelAdversarial, SeveralLevelsCloseAtOneExit) {
  // A tower where the root of the level-1, level-2, and level-3 components
  // is the same node: the per-level close loop at one exit must pop three
  // parallel stacks in the right (deepest-first) order.
  Kit K;
  ProcId T1 = K.proc("t1", K.Main);
  VarId V1 = K.local(T1, "v1");
  ProcId T2 = K.proc("t2", T1);
  VarId V2 = K.local(T2, "v2");
  ProcId T3 = K.proc("t3", T2);
  K.mod(T3, V1);
  K.mod(T3, V2);
  K.mod(T3, K.G);
  K.call(T1, T2);
  K.call(T2, T3);
  K.call(T3, T3); // Self loop at the deepest level.
  K.call(K.Main, T1);
  expectAllAgree(K.B.finish());
}

TEST(MultiLevelAdversarial, CycleSpanningThreeLevels) {
  // t1 -> t2 -> t3 -> t1: one level-1 SCC containing procedures at levels
  // 1..3; the level-2 problem sees only t2 -> t3 (and t3 -> t1 drops out),
  // the level-3 problem only trivial components.
  Kit K;
  ProcId T1 = K.proc("t1", K.Main);
  VarId V1 = K.local(T1, "v1");
  ProcId T2 = K.proc("t2", T1);
  VarId V2 = K.local(T2, "v2");
  ProcId T3 = K.proc("t3", T2);
  K.mod(T2, V1);
  K.mod(T3, V2);
  K.mod(T1, K.G);
  K.call(T1, T2);
  K.call(T2, T3);
  K.call(T3, T1);
  K.call(K.Main, T1);
  expectAllAgree(K.B.finish());
}

TEST(MultiLevelAdversarial, TwoIndependentDeepRegions) {
  // Two level-1 subtrees, each with internal level-2 recursion; no edges
  // between the regions (per-problem Tarjan must keep their stacks
  // disjoint even though one full-graph DFS covers both).
  Kit K;
  ProcId L = K.proc("left", K.Main);
  VarId LV = K.local(L, "lv");
  ProcId L1 = K.proc("l1", L);
  ProcId L2 = K.proc("l2", L);
  ProcId R = K.proc("right", K.Main);
  VarId RV = K.local(R, "rv");
  ProcId R1 = K.proc("r1", R);
  K.mod(L1, LV);
  K.mod(R1, RV);
  K.mod(R1, K.G);
  K.call(L, L1);
  K.call(L1, L2);
  K.call(L2, L1); // level-2 cycle in the left region.
  K.call(R, R1);
  K.call(R1, R1); // self loop in the right region.
  K.call(K.Main, L);
  K.call(K.Main, R);
  expectAllAgree(K.B.finish());
}

TEST(MultiLevelAdversarial, ParallelEdgesAcrossLevels) {
  // Multi-graph stress: the same (caller, callee) pair repeated several
  // times at different positions in the edge order.
  Kit K;
  ProcId T1 = K.proc("t1", K.Main);
  VarId V1 = K.local(T1, "v1");
  ProcId T2 = K.proc("t2", T1);
  K.mod(T2, V1);
  K.mod(T2, K.G);
  K.call(T1, T2);
  K.call(T1, T2);
  K.call(T2, T1);
  K.call(T1, T2);
  K.call(K.Main, T1);
  expectAllAgree(K.B.finish());
}

TEST(MultiLevelAdversarial, DeepTowerNoStackOverflow) {
  // 5000 nesting levels: the iterative DFS and O(dP) per-node loops must
  // survive; repeated-vs-combined agreement at scale.
  Kit K;
  ProcId Cur = K.Main;
  std::vector<ProcId> Tower;
  for (unsigned I = 0; I != 5000; ++I) {
    ProcId Next = K.B.createProc("t" + std::to_string(I), Cur);
    Tower.push_back(Next);
    Cur = Next;
  }
  K.mod(Tower.back(), K.G);
  for (unsigned I = 0; I + 1 != 5000; ++I)
    K.call(Tower[I], Tower[I + 1]);
  K.call(K.Main, Tower[0]);
  Program P = K.B.finish();

  VarMasks Masks(P);
  graph::CallGraph CG(P);
  graph::BindingGraph BG(P);
  LocalEffects Local(P, Masks, EffectKind::Mod);
  std::vector<EffectSet> Plus =
      computeIModPlus(P, Local, solveRMod(P, BG, Local));
  GModResult Com = solveMultiLevelCombined(P, CG, Masks, Plus);
  // Every tower member (and main) sees the global modification.
  EXPECT_TRUE(Com.of(P.main()).test(K.G.index()));
  EXPECT_TRUE(Com.of(Tower[0]).test(K.G.index()));
  EXPECT_TRUE(Com.of(Tower[4999]).test(K.G.index()));
}

} // namespace
