//===- tests/solver_edge_test.cpp - Degenerate and extreme inputs -------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "graph/BindingGraph.h"
#include "ir/ProgramBuilder.h"
#include "synth/ProgramGen.h"

#include "SolverMatrix.h"

#include <gtest/gtest.h>

using namespace ipse;
using namespace ipse::analysis;
using namespace ipse::ir;

namespace {

/// Runs every engine in the solver matrix (tests/SolverMatrix.h) on \p P
/// and compares each against the iterative oracle, for both MOD and USE.
void expectAllSolversAgree(const Program &P) {
  const std::vector<testmatrix::SolverEngine> &Engines =
      testmatrix::allSolverEngines();
  for (EffectKind Kind : {EffectKind::Mod, EffectKind::Use}) {
    GModResult Oracle = Engines.front().Solve(P, Kind);
    for (std::size_t E = 1; E != Engines.size(); ++E) {
      const testmatrix::SolverEngine &Engine = Engines[E];
      if (Engine.TwoLevelOnly && P.maxProcLevel() > 1)
        continue;
      GModResult Got = Engine.Solve(P, Kind);
      for (std::uint32_t I = 0; I != P.numProcs(); ++I)
        EXPECT_EQ(Got.GMod[I], Oracle.GMod[I])
            << Engine.Name << " vs oracle: " << P.name(ProcId(I));
    }
  }
}

TEST(SolverEdge, EmptyProgram) {
  ProgramBuilder B;
  B.createMain("m");
  Program P = B.finish();
  SideEffectAnalyzer An(P);
  EXPECT_TRUE(An.gmod(P.main()).none());
  expectAllSolversAgree(P);
}

TEST(SolverEdge, MainOnlyWithEffects) {
  // Footnote 3: GMOD(main) may be non-empty.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  StmtId S = B.addStmt(Main);
  B.addMod(S, G);
  Program P = B.finish();
  SideEffectAnalyzer An(P);
  EXPECT_TRUE(An.gmod(Main).test(G.index()));
  expectAllSolversAgree(P);
}

TEST(SolverEdge, ProceduresWithoutCalls) {
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId A = B.createProc("a", Main);
  StmtId S = B.addStmt(A);
  B.addMod(S, G);
  B.addCallStmt(Main, A, {});
  Program P = B.finish();
  graph::BindingGraph BG(P);
  EXPECT_EQ(BG.numEdges(), 0u);
  expectAllSolversAgree(P);
}

TEST(SolverEdge, SelfRecursionThroughOwnFormal) {
  // p(a, b): p(b, a) — the arguments swap around the self loop; only b is
  // directly modified, but the swap makes both formals RMOD.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G1 = B.addGlobal("g1");
  VarId G2 = B.addGlobal("g2");
  ProcId Pp = B.createProc("p", Main);
  VarId A = B.addFormal(Pp, "a");
  VarId Bf = B.addFormal(Pp, "b");
  StmtId S = B.addStmt(Pp);
  B.addMod(S, Bf);
  B.addCallStmt(Pp, Pp, {Bf, A}); // Swapped.
  B.addCallStmt(Main, Pp, {G1, G2});
  Program P = B.finish();

  SideEffectAnalyzer An(P);
  EXPECT_TRUE(An.rmodContains(A));
  EXPECT_TRUE(An.rmodContains(Bf));
  EXPECT_TRUE(An.gmod(Main).test(G1.index()));
  EXPECT_TRUE(An.gmod(Main).test(G2.index()));
  expectAllSolversAgree(P);
}

TEST(SolverEdge, NonSwappingSelfRecursionKeepsPrecision) {
  // p(a, b): p(a, b) — no swap; only b is modified, a must stay clean.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G1 = B.addGlobal("g1");
  VarId G2 = B.addGlobal("g2");
  ProcId Pp = B.createProc("p", Main);
  VarId A = B.addFormal(Pp, "a");
  VarId Bf = B.addFormal(Pp, "b");
  StmtId S = B.addStmt(Pp);
  B.addMod(S, Bf);
  B.addCallStmt(Pp, Pp, {A, Bf});
  B.addCallStmt(Main, Pp, {G1, G2});
  Program P = B.finish();

  SideEffectAnalyzer An(P);
  EXPECT_FALSE(An.rmodContains(A));
  EXPECT_TRUE(An.rmodContains(Bf));
  EXPECT_FALSE(An.gmod(Main).test(G1.index()));
  EXPECT_TRUE(An.gmod(Main).test(G2.index()));
  expectAllSolversAgree(P);
}

TEST(SolverEdge, CompleteCallGraph) {
  // Every procedure calls every other: one giant SCC.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  std::vector<VarId> G;
  std::vector<ProcId> Procs;
  for (unsigned I = 0; I != 8; ++I)
    G.push_back(B.addGlobal("g" + std::to_string(I)));
  for (unsigned I = 0; I != 8; ++I)
    Procs.push_back(B.createProc("p" + std::to_string(I), Main));
  for (unsigned I = 0; I != 8; ++I) {
    StmtId S = B.addStmt(Procs[I]);
    B.addMod(S, G[I]);
    for (unsigned J = 0; J != 8; ++J)
      if (I != J)
        B.addCallStmt(Procs[I], Procs[J], {});
  }
  B.addCallStmt(Main, Procs[0], {});
  Program P = B.finish();

  SideEffectAnalyzer An(P);
  // Everyone sees every global.
  for (ProcId Proc : Procs)
    for (VarId V : G)
      EXPECT_TRUE(An.gmod(Proc).test(V.index()));
  expectAllSolversAgree(P);
}

TEST(SolverEdge, AllExpressionActuals) {
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  (void)G;
  ProcId Pp = B.createProc("p", Main);
  VarId A = B.addFormal(Pp, "a");
  StmtId S = B.addStmt(Pp);
  B.addMod(S, A);
  StmtId Call = B.addStmt(Main);
  B.addCall(Call, Pp, std::vector<Actual>{Actual::expression()});
  Program P = B.finish();

  SideEffectAnalyzer An(P);
  EXPECT_TRUE(An.rmodContains(A));
  EXPECT_TRUE(An.gmod(Main).none()); // The effect lands on no storage.
  expectAllSolversAgree(P);
}

TEST(SolverEdge, LongBindingChainThroughGlobalsAndFormals) {
  // Alternation: formal -> formal -> global actual breaks the chain.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId P1 = B.createProc("p1", Main);
  VarId F1 = B.addFormal(P1, "f1");
  ProcId P2 = B.createProc("p2", Main);
  VarId F2 = B.addFormal(P2, "f2");
  ProcId P3 = B.createProc("p3", Main);
  VarId F3 = B.addFormal(P3, "f3");
  StmtId S = B.addStmt(P3);
  B.addMod(S, F3);
  B.addCallStmt(P1, P2, {F1}); // formal-to-formal: β edge.
  B.addCallStmt(P2, P3, {G});  // global actual: no β edge, but G gets hit.
  B.addCallStmt(Main, P1, {G});
  Program P = B.finish();

  SideEffectAnalyzer An(P);
  EXPECT_TRUE(An.rmodContains(F3));
  EXPECT_FALSE(An.rmodContains(F2)); // f2 never reaches a modified formal.
  EXPECT_FALSE(An.rmodContains(F1));
  // G is modified via the global binding at p2's call site.
  EXPECT_TRUE(An.gmod(P2).test(G.index()));
  EXPECT_TRUE(An.gmod(Main).test(G.index()));
  expectAllSolversAgree(P);
}

TEST(SolverEdge, WideFlatProgram) {
  // main calls 200 leaf procedures; no recursion, no bindings.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  for (unsigned I = 0; I != 200; ++I) {
    ProcId Pp = B.createProc("p" + std::to_string(I), Main);
    if (I % 2 == 0) {
      StmtId S = B.addStmt(Pp);
      B.addMod(S, G);
    }
    B.addCallStmt(Main, Pp, {});
  }
  Program P = B.finish();
  SideEffectAnalyzer An(P);
  EXPECT_TRUE(An.gmod(Main).test(G.index()));
  expectAllSolversAgree(P);
}

TEST(SolverEdge, UseAndModDisjointSeeds) {
  // Statements where LMOD and LUSE never overlap: the two analyses must
  // stay fully independent.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId W = B.addGlobal("written");
  VarId R = B.addGlobal("readonly");
  ProcId Pp = B.createProc("p", Main);
  StmtId S = B.addStmt(Pp);
  B.addMod(S, W);
  B.addUse(S, R);
  B.addCallStmt(Main, Pp, {});
  Program P = B.finish();

  SideEffectAnalyzer Mod(P);
  AnalyzerOptions UseOpts;
  UseOpts.Kind = EffectKind::Use;
  SideEffectAnalyzer Use(P, UseOpts);
  EXPECT_TRUE(Mod.gmod(Main).test(W.index()));
  EXPECT_FALSE(Mod.gmod(Main).test(R.index()));
  EXPECT_TRUE(Use.gmod(Main).test(R.index()));
  EXPECT_FALSE(Use.gmod(Main).test(W.index()));
}

TEST(SolverEdge, LargeRandomProgramSmoke) {
  synth::ProgramGenConfig Cfg;
  Cfg.Seed = 3141;
  Cfg.NumProcs = 3000;
  Cfg.NumGlobals = 100;
  Cfg.MaxFormals = 4;
  Cfg.MaxCallsPerProc = 5;
  Program P = synth::generateProgram(Cfg);
  SideEffectAnalyzer An(P);
  // Just exercise the whole pipeline at scale; spot-check an invariant.
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    EXPECT_TRUE(An.imodPlus(ProcId(I)).isSubsetOf(An.gmod(ProcId(I))));
}

} // namespace
