//===- tests/interpreter_test.cpp - Execution semantics + MOD soundness -------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Two layers: unit tests pinning the interpreter's semantics (reference
// parameters, static links, recursion), then the *soundness sweep* — the
// strongest validation in the repository: a flow-insensitive analysis must
// over-approximate every concrete execution, so for every call statement
// actually executed, the variables observed written (read) during its
// dynamic extent must be contained in the computed MOD (USE) set of that
// statement.
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasEstimator.h"
#include "analysis/SideEffectAnalyzer.h"
#include "frontend/Interpreter.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Printer.h"
#include "synth/ProgramGen.h"
#include "synth/SourceGen.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

using namespace ipse;
using namespace ipse::frontend;
using namespace ipse::ir;

namespace {

/// Parses source into both representations: the AST (for execution) and
/// the ir::Program (for analysis).
struct Compiled {
  std::unique_ptr<ast::ProgramAst> Ast;
  std::optional<Program> Prog;

  explicit Compiled(const std::string &Source) {
    DiagnosticEngine Diags;
    std::vector<Token> Tokens = lex(Source, Diags);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.renderAll();
    Ast = parse(Tokens, Diags);
    EXPECT_NE(Ast, nullptr) << Diags.renderAll();
    if (Ast)
      Prog = lowerToIr(*Ast, Diags);
    EXPECT_TRUE(Prog.has_value()) << Diags.renderAll();
  }
};

ExecutionResult runSource(const std::string &Source,
                          std::vector<std::int64_t> Input = {},
                          std::uint64_t MaxSteps = 100000) {
  Compiled C(Source);
  InterpreterOptions Options;
  Options.Input = std::move(Input);
  Options.MaxSteps = MaxSteps;
  return interpret(*C.Ast, Options);
}

TEST(Interpreter, ArithmeticAndOutput) {
  ExecutionResult R = runSource(R"(
program t; var a;
begin
  a := 2 + 3 * 4;
  write a;
  write (2 + 3) * 4;
  write 7 / 2;
  write 1 / 0;
  write -a;
end.
)");
  ASSERT_TRUE(R.Finished);
  ASSERT_EQ(R.Output.size(), 5u);
  EXPECT_EQ(R.Output[0], 14);
  EXPECT_EQ(R.Output[1], 20);
  EXPECT_EQ(R.Output[2], 3);
  EXPECT_EQ(R.Output[3], 0); // Total semantics.
  EXPECT_EQ(R.Output[4], -14);
}

TEST(Interpreter, ControlFlowAndRead) {
  ExecutionResult R = runSource(R"(
program t; var n, sum;
begin
  read n;
  while n do
    sum := sum + n;
    n := n - 1;
  end;
  if sum then write sum; else write -1; end;
end.
)",
                                {4});
  ASSERT_TRUE(R.Finished);
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], 10);
  EXPECT_EQ(R.Globals.at("sum"), 10);
  EXPECT_EQ(R.Globals.at("n"), 0);
}

TEST(Interpreter, ReferenceParametersReallyAlias) {
  ExecutionResult R = runSource(R"(
program t; var a, b;
proc swap(x, y); var tmp;
begin
  tmp := x; x := y; y := tmp;
end;
begin
  a := 1; b := 2;
  call swap(a, b);
  write a; write b;
end.
)");
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.Output[0], 2);
  EXPECT_EQ(R.Output[1], 1);
}

TEST(Interpreter, ExpressionActualsCopy) {
  ExecutionResult R = runSource(R"(
program t; var a;
proc bump(x); begin x := x + 1; end;
begin
  a := 5;
  call bump(a + 0);   // by value: a must not change
  call bump(a);       // by reference: a changes
  write a;
end.
)");
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.Output[0], 6);
}

TEST(Interpreter, StaticLinksForUplevelAccess) {
  ExecutionResult R = runSource(R"(
program t; var g;
proc outer(a); var ov;
  proc inner();
  begin
    ov := ov + a;     // up-level store and read
    g := g + 1;
  end;
begin
  ov := 10;
  call inner();
  call inner();
  write ov;
end;
begin
  call outer(3);
  write g;
end.
)");
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.Output[0], 16); // 10 + 3 + 3.
  EXPECT_EQ(R.Output[1], 2);
}

TEST(Interpreter, RecursionGetsFreshLocals) {
  ExecutionResult R = runSource(R"(
program t; var acc;
proc fact(n); var saved;
begin
  saved := n;
  if n then
    call fact(n - 1);
    acc := acc + saved;   // saved must be per-activation
  end;
end;
begin
  call fact(4);
  write acc;
end.
)");
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.Output[0], 10); // 4 + 3 + 2 + 1.
}

TEST(Interpreter, StepBudgetStopsInfiniteLoops) {
  ExecutionResult R = runSource(R"(
program t; var x;
begin
  while 1 do x := x + 1; end;
end.
)",
                                {}, 500);
  EXPECT_FALSE(R.Finished);
  EXPECT_LE(R.Steps, 500u);
}

TEST(Interpreter, CallEventsRecordVisibleEffects) {
  ExecutionResult R = runSource(R"(
program t; var g, untouched;
proc inc(x); begin x := x + g; end;
begin
  g := 3;
  call inc(g);
end.
)");
  ASSERT_TRUE(R.Finished);
  ASSERT_EQ(R.Calls.size(), 1u);
  const CallEvent &E = R.Calls[0];
  EXPECT_EQ(E.Callee, "inc");
  EXPECT_EQ(E.CallerProc, "t");
  EXPECT_EQ(E.CallIndexInCaller, 0u);
  ASSERT_EQ(E.WrittenVisible.size(), 1u);
  EXPECT_EQ(E.WrittenVisible[0], "g");
  ASSERT_EQ(E.ReadVisible.size(), 1u); // x reads aliased g; g read directly.
  EXPECT_EQ(E.ReadVisible[0], "g");
}

TEST(Interpreter, ReadBeyondInputYieldsZero) {
  ExecutionResult R = runSource(R"(
program t; var a, b;
begin
  read a;
  read b;
  write a; write b;
end.
)",
                                {42});
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.Output[0], 42);
  EXPECT_EQ(R.Output[1], 0);
}

TEST(Interpreter, DepthCapMarksEventsIncomplete) {
  Compiled C(R"(
program t; var n;
proc spin(); begin call spin(); end;
begin
  call spin();
  n := 1;           // never reached
end.
)");
  InterpreterOptions Options;
  Options.MaxDepth = 16;
  ExecutionResult R = interpret(*C.Ast, Options);
  EXPECT_FALSE(R.Finished);
  ASSERT_FALSE(R.Calls.empty());
  EXPECT_LE(R.Calls.size(), 17u); // Bounded by the depth cap.
  for (const CallEvent &E : R.Calls)
    EXPECT_FALSE(E.Completed);
  EXPECT_EQ(R.Globals.at("n"), 0);
}

TEST(Interpreter, RuntimeShadowingPicksInnermost) {
  ExecutionResult R = runSource(R"(
program t; var x;
proc p(); var x;
begin
  x := 5;           // p's x, not the global
end;
begin
  x := 1;
  call p();
  write x;
end.
)");
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.Output[0], 1); // Global untouched.
  ASSERT_EQ(R.Calls.size(), 1u);
  EXPECT_TRUE(R.Calls[0].WrittenVisible.empty()); // Only p.x written.
}

TEST(Interpreter, SiblingCallUsesCorrectStaticLink) {
  // q reads p's local through its own static link to main, not through
  // the *dynamic* caller chain: s reads the global g, never p's shadow.
  ExecutionResult R = runSource(R"(
program t; var g;
proc s(); begin g := g + 100; end;
proc p(); var g;
begin
  g := 7;     // shadow
  call s();   // must bump the GLOBAL g
end;
begin
  g := 1;
  call p();
  write g;
end.
)");
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.Output[0], 101); // Static scoping, not dynamic.
}

TEST(Interpreter, WhileBodyNeverRunsOnFalse) {
  ExecutionResult R = runSource(R"(
program t; var a;
begin
  while 0 do a := 99; end;
  write a;
end.
)");
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.Output[0], 0);
}

//===----------------------------------------------------------------------===//
// The soundness sweep.
//===----------------------------------------------------------------------===//

/// Renders a EffectSet of variables as a set of qualified names.
std::set<std::string> namesOf(const Program &P, const EffectSet &BV) {
  std::set<std::string> Out;
  BV.forEachSetBit([&](std::size_t I) {
    Out.insert(qualifiedName(P, VarId(static_cast<std::uint32_t>(I))));
  });
  return Out;
}

/// Executes \p Source and checks every observed call event against the
/// analyzer's MOD and USE answers for the matching call statement.
void checkSoundness(const std::string &Source,
                    std::vector<std::int64_t> Input = {},
                    std::uint64_t MaxSteps = 20000) {
  Compiled C(Source);
  ASSERT_TRUE(C.Prog.has_value());
  const Program &P = *C.Prog;

  analysis::SideEffectAnalyzer Mod(P);
  analysis::AnalyzerOptions UseOpts;
  UseOpts.Kind = analysis::EffectKind::Use;
  analysis::SideEffectAnalyzer Use(P, UseOpts);
  AliasInfo Aliases = analysis::estimateAliases(P);

  InterpreterOptions Options;
  Options.Input = std::move(Input);
  Options.MaxSteps = MaxSteps;
  ExecutionResult R = interpret(*C.Ast, Options);

  // Procedure by name.
  std::map<std::string, ProcId> Procs;
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    Procs[P.name(ProcId(I))] = ProcId(I);

  for (const CallEvent &E : R.Calls) {
    ASSERT_TRUE(Procs.count(E.CallerProc)) << E.CallerProc;
    const Procedure &Caller = P.proc(Procs.at(E.CallerProc));
    ASSERT_LT(E.CallIndexInCaller, Caller.CallSites.size());
    CallSiteId Site = Caller.CallSites[E.CallIndexInCaller];
    StmtId CallStmt = P.callSite(Site).Stmt;
    EXPECT_EQ(P.name(P.callSite(Site).Callee), E.Callee);

    std::set<std::string> ModSet =
        namesOf(P, Mod.mod(CallStmt, Aliases));
    std::set<std::string> UseSet =
        namesOf(P, Use.mod(CallStmt, Aliases));

    for (const std::string &W : E.WrittenVisible)
      EXPECT_TRUE(ModSet.count(W))
          << "unsound MOD: '" << W << "' written during call of "
          << E.Callee << " from " << E.CallerProc << " but MOD = {"
          << Mod.setToString(Mod.mod(CallStmt, Aliases)) << "}";
    for (const std::string &Rd : E.ReadVisible)
      EXPECT_TRUE(UseSet.count(Rd))
          << "unsound USE: '" << Rd << "' read during call of " << E.Callee
          << " from " << E.CallerProc << " but USE = {"
          << Use.setToString(Use.mod(CallStmt, Aliases)) << "}";
  }
}

TEST(Interpreter, AckermannComputesCorrectly) {
  std::ifstream In(std::string(IPSE_SOURCE_DIR) +
                   "/examples/corpus/ackermann.mp");
  ASSERT_TRUE(In.good());
  std::ostringstream SS;
  SS << In.rdbuf();
  ExecutionResult R = runSource(SS.str(), {}, 1000000);
  ASSERT_TRUE(R.Finished);
  ASSERT_GE(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], 7); // Ackermann(2, 2).
}

TEST(Interpreter, ShadowingComputesCorrectly) {
  std::ifstream In(std::string(IPSE_SOURCE_DIR) +
                   "/examples/corpus/shadowing.mp");
  ASSERT_TRUE(In.good());
  std::ostringstream SS;
  SS << In.rdbuf();
  ExecutionResult R = runSource(SS.str());
  ASSERT_TRUE(R.Finished);
  ASSERT_EQ(R.Output.size(), 1u);
  EXPECT_EQ(R.Output[0], 21); // 10 (by ref) + 10 (by value) + 1 (global x).
}

TEST(Soundness, CorpusPrograms) {
  for (const char *Name : {"banking.mp", "swap_chain.mp", "accumulator.mp",
                           "evaluator.mp", "tower.mp", "shadowing.mp",
                           "ackermann.mp"}) {
    std::ifstream In(std::string(IPSE_SOURCE_DIR) + "/examples/corpus/" +
                     Name);
    ASSERT_TRUE(In.good()) << Name;
    std::ostringstream SS;
    SS << In.rdbuf();
    SCOPED_TRACE(Name);
    checkSoundness(SS.str(), {7, 3, 2});
  }
}

TEST(Soundness, AliasedFormalsProgram) {
  // The classical MOD-vs-DMOD gap: the write through c lands on g, which
  // only alias factoring can predict at the call site inside p.
  checkSoundness(R"(
program t; var g;
proc q(c); begin c := 1; end;
proc p(a); begin call q(a); end;
begin
  call p(g);
end.
)");
}

TEST(Soundness, TwoFormalsSameActual) {
  checkSoundness(R"(
program t; var g, out;
proc p(a, b);
begin
  a := 7;         // also writes b and g: all three alias
  out := b;
end;
begin
  call p(g, g);
end.
)");
}

TEST(Soundness, RandomGeneratedPrograms) {
  for (std::uint64_t Seed = 1; Seed <= 25; ++Seed) {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 10;
    Cfg.NumGlobals = 4;
    Cfg.MaxFormals = 3;
    Cfg.MaxNestDepth = 3;
    Cfg.MaxCallsPerProc = 3;
    Cfg.UseDensityPct = 40;
    Cfg.ModDensityPct = 40;
    Program P = synth::generateProgram(Cfg);
    SCOPED_TRACE("seed " + std::to_string(Seed));
    checkSoundness(synth::emitMiniProc(P), {1, 2, 3}, 5000);
  }
}

} // namespace
