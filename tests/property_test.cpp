//===- tests/property_test.cpp - Cross-algorithm property validation ----------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The decisive correctness evidence for the reproduction: on hundreds of
// random programs, every algorithm in the repository — the paper's Figure 1
// / Figure 2 / §4 algorithms and all three baselines — must compute the
// same sets, and the invariants the paper's derivation relies on must hold.
//
//===----------------------------------------------------------------------===//

#include "analysis/DMod.h"
#include "analysis/IModPlus.h"
#include "analysis/LocalEffects.h"
#include "analysis/MultiLevelGMod.h"
#include "analysis/RMod.h"
#include "analysis/SideEffectAnalyzer.h"
#include "baselines/IterativeSolver.h"
#include "baselines/RModIterative.h"
#include "baselines/SwiftStyleSolver.h"
#include "baselines/WorklistSolver.h"
#include "graph/BindingGraph.h"
#include "graph/Reachability.h"
#include "graph/Tarjan.h"
#include "ir/Printer.h"
#include "ir/ProgramBuilder.h"
#include "synth/ProgramGen.h"

#include "SolverMatrix.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace ipse;
using namespace ipse::analysis;
using namespace ipse::ir;

namespace {

struct ShapeParam {
  const char *Name;
  synth::ProgramGenConfig Base;
};

ShapeParam shapes[] = {
    {"TwoLevelSmall",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 8;
       C.NumGlobals = 3;
       C.MaxFormals = 3;
       C.MaxCallsPerProc = 3;
       return C;
     }()},
    {"TwoLevelDense",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 30;
       C.NumGlobals = 8;
       C.MaxFormals = 4;
       C.MaxCallsPerProc = 6;
       C.ModDensityPct = 50;
       return C;
     }()},
    {"TwoLevelDag",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 25;
       C.NumGlobals = 5;
       C.AllowRecursion = false;
       return C;
     }()},
    {"NestedDeep",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 20;
       C.NumGlobals = 4;
       C.MaxNestDepth = 5;
       C.MaxCallsPerProc = 4;
       return C;
     }()},
    {"ParameterHeavy",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 20;
       C.NumGlobals = 2;
       C.MaxFormals = 6;
       C.FormalActualBiasPct = 85;
       C.ModDensityPct = 15;
       return C;
     }()},
    {"SparseEffects",
     [] {
       synth::ProgramGenConfig C;
       C.NumProcs = 15;
       C.NumGlobals = 6;
       C.ModDensityPct = 5;
       C.UseDensityPct = 5;
       return C;
     }()},
};

class RandomPrograms
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
protected:
  /// A random program with the paper's §3.3 precondition established:
  /// every procedure reachable (unreachable-procedure elimination is the
  /// preprocessing step the paper prescribes; see the
  /// UnreachableNestedProcedures test for what goes wrong without it).
  Program makeProgram() const {
    return graph::eliminateUnreachable(makeRawProgram());
  }

  /// The same program before elimination (may contain unreachable
  /// procedures).
  Program makeRawProgram() const {
    synth::ProgramGenConfig Cfg = shapes[std::get<0>(GetParam())].Base;
    Cfg.Seed = std::get<1>(GetParam());
    return synth::generateProgram(Cfg);
  }
};

/// The paper's decomposition (Figure 1 + eq. 5 + Figure 2/§4) must reach
/// the very fixpoint that defines the problem (equation 1) — and so must
/// every baseline and alternative engine, for both MOD and USE.  The
/// engine list lives in tests/SolverMatrix.h; new engines registered there
/// are covered here with no further changes.
TEST_P(RandomPrograms, AllSolversAgreeOnGMod) {
  Program P = makeProgram();
  const std::vector<testmatrix::SolverEngine> &Engines =
      testmatrix::allSolverEngines();
  for (EffectKind Kind : {EffectKind::Mod, EffectKind::Use}) {
    GModResult Oracle = Engines.front().Solve(P, Kind);
    for (std::size_t E = 1; E != Engines.size(); ++E) {
      const testmatrix::SolverEngine &Engine = Engines[E];
      if (Engine.TwoLevelOnly && P.maxProcLevel() > 1)
        continue;
      GModResult Got = Engine.Solve(P, Kind);
      for (std::uint32_t I = 0; I != P.numProcs(); ++I)
        EXPECT_EQ(Got.GMod[I], Oracle.GMod[I])
            << Engine.Name << " vs " << Engines.front().Name << ": "
            << P.name(ProcId(I))
            << (Kind == EffectKind::Mod ? " (MOD)" : " (USE)");
    }
  }
}

TEST_P(RandomPrograms, RModSolversAgree) {
  Program P = makeProgram();
  VarMasks Masks(P);
  graph::CallGraph CG(P);
  graph::BindingGraph BG(P);
  LocalEffects Local(P, Masks, EffectKind::Mod);

  RModResult Fig1 = solveRMod(P, BG, Local);
  RModResult Iter = baselines::solveRModIterative(P, BG, Local);
  baselines::SwiftRModResult Swift =
      baselines::solveSwiftRMod(P, CG, Masks, Local);

  EXPECT_EQ(Fig1.ModifiedFormals, Iter.ModifiedFormals);
  EXPECT_EQ(Fig1.ModifiedFormals, Swift.RMod.ModifiedFormals);
}

/// The β-routed solvers agree with each other even on programs with
/// unreachable procedures (they see the same binding events either way).
TEST_P(RandomPrograms, BetaSolversAgreeOnRawPrograms) {
  Program P = makeRawProgram();
  VarMasks Masks(P);
  graph::CallGraph CG(P);
  graph::BindingGraph BG(P);
  LocalEffects Local(P, Masks, EffectKind::Mod);

  RModResult Fig1 = solveRMod(P, BG, Local);
  RModResult Iter = baselines::solveRModIterative(P, BG, Local);
  EXPECT_EQ(Fig1.ModifiedFormals, Iter.ModifiedFormals);

  std::vector<EffectSet> Plus = computeIModPlus(P, Local, Fig1);
  GModResult Rep = solveMultiLevelRepeated(P, CG, Masks, Plus);
  GModResult Com = solveMultiLevelCombined(P, CG, Masks, Plus);
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    EXPECT_EQ(Rep.GMod[I], Com.GMod[I]) << P.name(ProcId(I));
  if (P.maxProcLevel() <= 1) {
    GModResult Fig2 = solveGMod(P, CG, Masks, Plus);
    for (std::uint32_t I = 0; I != P.numProcs(); ++I)
      EXPECT_EQ(Fig2.GMod[I], Com.GMod[I]) << P.name(ProcId(I));
  }
}

/// RMOD(p) is exactly GMOD(p) restricted to p's formals — the glue between
/// the two subproblems.
TEST_P(RandomPrograms, RModIsGModOnFormals) {
  Program P = makeProgram();
  SideEffectAnalyzer An(P);
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    for (VarId F : P.proc(ProcId(I)).Formals)
      EXPECT_EQ(An.rmodContains(F), An.gmod(ProcId(I)).test(F.index()))
          << qualifiedName(P, F);
}

/// IMOD(p) ⊆ IMOD+(p) ⊆ GMOD(p): each pipeline stage only adds effects.
TEST_P(RandomPrograms, PipelineStagesAreMonotone) {
  Program P = makeProgram();
  SideEffectAnalyzer An(P);
  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    ProcId Proc(I);
    EXPECT_TRUE(An.imod(Proc).isSubsetOf(An.imodPlus(Proc)));
    EXPECT_TRUE(An.imodPlus(Proc).isSubsetOf(An.gmod(Proc)));
  }
}

/// Within a call-graph SCC of a two-level program, the global part of GMOD
/// is the same at every member (the fact lines 19-24 of findgmod exploit).
TEST_P(RandomPrograms, SccMembersShareGlobalGMod) {
  Program P = makeProgram();
  if (P.maxProcLevel() > 1)
    return;
  SideEffectAnalyzer An(P);
  graph::SccDecomposition Sccs =
      graph::computeSccs(An.callGraph().graph());
  const EffectSet &Global = An.masks().global();

  for (const std::vector<graph::NodeId> &Members : Sccs.Members) {
    if (Members.size() < 2)
      continue;
    EffectSet First = An.gmod(ProcId(Members[0]));
    First.andWith(Global);
    for (std::size_t I = 1; I != Members.size(); ++I) {
      EffectSet Other = An.gmod(ProcId(Members[I]));
      Other.andWith(Global);
      EXPECT_EQ(First, Other);
    }
  }
}

/// The same holds on β for RMOD: every node of a binding SCC has the same
/// value (the property equation (6)'s solution method rests on).
TEST_P(RandomPrograms, BindingSccMembersShareRMod) {
  Program P = makeProgram();
  graph::BindingGraph BG(P);
  VarMasks Masks(P);
  LocalEffects Local(P, Masks, EffectKind::Mod);
  RModResult R = solveRMod(P, BG, Local);

  graph::SccDecomposition Sccs = graph::computeSccs(BG.graph());
  for (const std::vector<graph::NodeId> &Members : Sccs.Members) {
    if (Members.size() < 2)
      continue;
    bool First = R.contains(BG.formal(Members[0]));
    for (std::size_t I = 1; I != Members.size(); ++I)
      EXPECT_EQ(R.contains(BG.formal(Members[I])), First);
  }
}

TEST_P(RandomPrograms, DModContainsLMod) {
  Program P = makeProgram();
  SideEffectAnalyzer An(P);
  for (std::uint32_t I = 0; I != P.numStmts(); ++I) {
    EffectSet D = An.dmod(StmtId(I));
    for (VarId V : P.stmt(StmtId(I)).LMod)
      EXPECT_TRUE(D.test(V.index()));
  }
}

/// DMOD at a call site only contains variables that outlive the callee:
/// a callee local appears only when it is itself passed as an actual
/// (possible at recursive calls, where caller and callee coincide).
TEST_P(RandomPrograms, DModContainsCalleeLocalsOnlyViaActuals) {
  Program P = makeProgram();
  SideEffectAnalyzer An(P);
  for (std::uint32_t I = 0; I != P.numCallSites(); ++I) {
    CallSiteId Site(I);
    EffectSet D = An.dmod(Site);
    const CallSite &C = P.callSite(Site);
    EffectSet CalleeLocalPart = D;
    CalleeLocalPart.andWith(An.masks().local(C.Callee));
    for (const Actual &A : C.Actuals)
      if (A.isVariable() && CalleeLocalPart.size() > A.Var.index() &&
          CalleeLocalPart.test(A.Var.index()))
        CalleeLocalPart.reset(A.Var.index());
    EXPECT_TRUE(CalleeLocalPart.none());
  }
}

/// Elimination is idempotent, and on an all-reachable program a second
/// elimination pass is an exact identity for the analysis results.
TEST_P(RandomPrograms, EliminationIsIdempotent) {
  Program Clean = makeProgram();
  std::string Error;
  ASSERT_TRUE(Clean.verify(Error)) << Error;
  Program Clean2 = graph::eliminateUnreachable(Clean);
  ASSERT_EQ(Clean.numProcs(), Clean2.numProcs());
  ASSERT_EQ(Clean.numVars(), Clean2.numVars());
  ASSERT_EQ(Clean.numCallSites(), Clean2.numCallSites());

  SideEffectAnalyzer An(Clean), An2(Clean2);
  for (std::uint32_t I = 0; I != Clean.numProcs(); ++I) {
    EXPECT_EQ(Clean.name(ProcId(I)), Clean2.name(ProcId(I)));
    EXPECT_EQ(An.setToString(An.gmod(ProcId(I))),
              An2.setToString(An2.gmod(ProcId(I))));
  }
}

/// Documents why the §3.3 reachability precondition matters.  Procedure
/// p1 (nested in p0) is never called; its call sites still contribute
/// binding edges to β, so the β-routed RMOD conservatively reports p0's
/// formal as modified, while the call-chain-routed oracle does not.  After
/// the paper's prescribed elimination the two agree exactly.
TEST(UnreachableNestedProcedures, BetaIsConservativeUntilElimination) {
  ProgramBuilder B;
  ProcId Main = B.createMain("main");
  VarId G = B.addGlobal("g");
  ProcId P0 = B.createProc("p0", Main);
  VarId F0 = B.addFormal(P0, "f0");
  ProcId P1 = B.createProc("p1", P0);
  VarId F1 = B.addFormal(P1, "f1");
  StmtId S = B.addStmt(P1);
  B.addMod(S, F1);                  // p1 modifies its formal...
  B.addCallStmt(P1, P1, {F0});      // ...and binds p0's formal to it.
  B.addCallStmt(Main, P0, {G});     // p0 is reachable; p1 is not.
  Program P = B.finish();

  VarMasks Masks(P);
  graph::CallGraph CG(P);
  graph::BindingGraph BG(P);
  LocalEffects Local(P, Masks, EffectKind::Mod);
  RModResult Beta = solveRMod(P, BG, Local);
  baselines::SwiftRModResult CallRouted =
      baselines::solveSwiftRMod(P, CG, Masks, Local);
  EXPECT_TRUE(Beta.contains(F0));              // Conservative.
  EXPECT_FALSE(CallRouted.RMod.contains(F0));  // Exact.

  Program Clean = graph::eliminateUnreachable(P);
  EXPECT_EQ(Clean.numProcs(), 2u); // p1 removed.
  VarMasks CMasks(Clean);
  graph::CallGraph CCG(Clean);
  graph::BindingGraph CBG(Clean);
  LocalEffects CLocal(Clean, CMasks, EffectKind::Mod);
  RModResult CBeta = solveRMod(Clean, CBG, CLocal);
  baselines::SwiftRModResult CCall =
      baselines::solveSwiftRMod(Clean, CCG, CMasks, CLocal);
  EXPECT_EQ(CBeta.ModifiedFormals, CCall.RMod.ModifiedFormals);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomPrograms,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89)),
    [](const ::testing::TestParamInfo<RandomPrograms::ParamType> &Info) {
      return std::string(shapes[std::get<0>(Info.param)].Name) + "_seed" +
             std::to_string(std::get<1>(Info.param));
    });

} // namespace
