//===- tests/multilevel_test.cpp - §4 multi-level GMOD tests ------------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include "analysis/IModPlus.h"
#include "analysis/LocalEffects.h"
#include "analysis/MultiLevelGMod.h"
#include "analysis/RMod.h"
#include "analysis/SideEffectAnalyzer.h"
#include "baselines/IterativeSolver.h"
#include "graph/BindingGraph.h"
#include "graph/Reachability.h"
#include "ir/ProgramBuilder.h"
#include "synth/ProgramGen.h"

#include <gtest/gtest.h>

using namespace ipse;
using namespace ipse::analysis;
using namespace ipse::ir;

namespace {

/// Runs the shared prefix of the pipeline and returns the IMOD+ sets.
struct Pipeline {
  VarMasks Masks;
  graph::CallGraph CG;
  graph::BindingGraph BG;
  LocalEffects Local;
  RModResult RMod;
  std::vector<EffectSet> IModPlus;

  explicit Pipeline(const Program &P)
      : Masks(P), CG(P), BG(P), Local(P, Masks, EffectKind::Mod),
        RMod(solveRMod(P, BG, Local)),
        IModPlus(computeIModPlus(P, Local, RMod)) {}
};

void expectSameGMod(const Program &P, const GModResult &A,
                    const GModResult &B, const char *What) {
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    EXPECT_EQ(A.GMod[I], B.GMod[I])
        << What << " disagrees at procedure " << P.name(ProcId(I));
}

/// Hand-checked nested example:
///
///   program m; var g;
///     proc outer(); var ov;
///       proc inner(); var iv;
///         begin ov := 1; iv := 2; g := 3; end;
///       begin call inner(); end;
///   begin call outer(); end.
TEST(MultiLevel, HandNestedExample) {
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId Outer = B.createProc("outer", Main);
  VarId OV = B.addLocal(Outer, "ov");
  ProcId Inner = B.createProc("inner", Outer);
  VarId IV = B.addLocal(Inner, "iv");
  StmtId S = B.addStmt(Inner);
  B.addMod(S, OV);
  B.addMod(S, IV);
  B.addMod(S, G);
  B.addCallStmt(Outer, Inner, {});
  B.addCallStmt(Main, Outer, {});
  Program P = B.finish();
  ASSERT_EQ(P.maxProcLevel(), 2u);

  Pipeline Pipe(P);
  for (auto Solve : {solveMultiLevelRepeated, solveMultiLevelCombined}) {
    GModResult GM = Solve(P, Pipe.CG, Pipe.Masks, Pipe.IModPlus);
    // GMOD(inner) = {ov, iv, g}: everything it touches.
    EXPECT_TRUE(GM.of(Inner).test(OV.index()));
    EXPECT_TRUE(GM.of(Inner).test(IV.index()));
    EXPECT_TRUE(GM.of(Inner).test(G.index()));
    // GMOD(outer): iv filtered (local to inner), ov and g stay.
    EXPECT_TRUE(GM.of(Outer).test(OV.index()));
    EXPECT_FALSE(GM.of(Outer).test(IV.index()));
    EXPECT_TRUE(GM.of(Outer).test(G.index()));
    // GMOD(main): only the global remains.
    EXPECT_TRUE(GM.of(Main).test(G.index()));
    EXPECT_FALSE(GM.of(Main).test(OV.index()));
    EXPECT_FALSE(GM.of(Main).test(IV.index()));
  }
}

TEST(MultiLevel, CycleAcrossNestingLevels) {
  // outer <-> inner mutual recursion spans levels 1 and 2: the G_2 SCC is
  // {inner} alone (the inner->outer edge leaves G_2), but the G_1 SCC is
  // {outer, inner}.
  ProgramBuilder B;
  ProcId Main = B.createMain("m");
  VarId G = B.addGlobal("g");
  ProcId Outer = B.createProc("outer", Main);
  VarId OV = B.addLocal(Outer, "ov");
  ProcId Inner = B.createProc("inner", Outer);
  StmtId S = B.addStmt(Inner);
  B.addMod(S, OV);
  B.addMod(S, G);
  B.addCallStmt(Outer, Inner, {});
  B.addCallStmt(Inner, Outer, {});
  B.addCallStmt(Main, Outer, {});
  Program P = B.finish();

  Pipeline Pipe(P);
  GModResult Rep = solveMultiLevelRepeated(P, Pipe.CG, Pipe.Masks,
                                           Pipe.IModPlus);
  GModResult Com = solveMultiLevelCombined(P, Pipe.CG, Pipe.Masks,
                                           Pipe.IModPlus);
  expectSameGMod(P, Rep, Com, "repeated vs combined");
  EXPECT_TRUE(Com.of(Outer).test(OV.index()));
  EXPECT_TRUE(Com.of(Outer).test(G.index()));
  EXPECT_TRUE(Com.of(Main).test(G.index()));
  EXPECT_FALSE(Com.of(Main).test(OV.index()));
}

TEST(MultiLevel, DegeneratesToFindGModWhenTwoLevel) {
  Program P = synth::makeFortranStyleProgram(40, 12, 3, 99);
  ASSERT_EQ(P.maxProcLevel(), 1u);
  Pipeline Pipe(P);
  GModResult Fig2 = solveGMod(P, Pipe.CG, Pipe.Masks, Pipe.IModPlus);
  GModResult Rep = solveMultiLevelRepeated(P, Pipe.CG, Pipe.Masks,
                                           Pipe.IModPlus);
  GModResult Com = solveMultiLevelCombined(P, Pipe.CG, Pipe.Masks,
                                           Pipe.IModPlus);
  expectSameGMod(P, Fig2, Rep, "findgmod vs repeated");
  expectSameGMod(P, Fig2, Com, "findgmod vs combined");
}

TEST(MultiLevel, TowerProgramsAgreeWithOracle) {
  for (unsigned Depth : {1u, 2u, 3u, 5u, 8u}) {
    for (std::uint64_t Seed : {1ull, 7ull, 23ull}) {
      Program P = synth::makeNestedProgram(Depth, 3, Seed);
      Pipeline Pipe(P);
      GModResult Rep = solveMultiLevelRepeated(P, Pipe.CG, Pipe.Masks,
                                               Pipe.IModPlus);
      GModResult Com = solveMultiLevelCombined(P, Pipe.CG, Pipe.Masks,
                                               Pipe.IModPlus);
      expectSameGMod(P, Rep, Com, "repeated vs combined");

      baselines::IterativeResult Oracle =
          baselines::solveIterative(P, Pipe.CG, Pipe.Masks, Pipe.Local);
      expectSameGMod(P, Com, Oracle.GMod, "combined vs oracle");
    }
  }
}

TEST(MultiLevel, RandomNestedProgramsAgreeWithOracle) {
  for (std::uint64_t Seed = 1; Seed <= 30; ++Seed) {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 25;
    Cfg.NumGlobals = 4;
    Cfg.MaxNestDepth = 4;
    Cfg.MaxFormals = 2;
    Cfg.MaxCallsPerProc = 4;
    // Establish the §3.3 precondition (every procedure reachable) before
    // comparing against the call-chain-routed oracle.
    Program P = graph::eliminateUnreachable(synth::generateProgram(Cfg));

    Pipeline Pipe(P);
    GModResult Rep = solveMultiLevelRepeated(P, Pipe.CG, Pipe.Masks,
                                             Pipe.IModPlus);
    GModResult Com = solveMultiLevelCombined(P, Pipe.CG, Pipe.Masks,
                                             Pipe.IModPlus);
    expectSameGMod(P, Rep, Com, "repeated vs combined");

    baselines::IterativeResult Oracle =
        baselines::solveIterative(P, Pipe.CG, Pipe.Masks, Pipe.Local);
    expectSameGMod(P, Com, Oracle.GMod, "combined vs oracle");
  }
}

TEST(MultiLevel, AnalyzerAutoSelectsForNestedPrograms) {
  Program P = synth::makeNestedProgram(4, 2, 5);
  SideEffectAnalyzer Auto(P);

  AnalyzerOptions Rep;
  Rep.Algorithm = AnalyzerOptions::GModAlgorithm::MultiLevelRepeated;
  SideEffectAnalyzer Explicit(P, Rep);
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    EXPECT_EQ(Auto.gmod(ProcId(I)), Explicit.gmod(ProcId(I)));
}

} // namespace
