//===- tests/synth_test.cpp - Generators and source round-trips ---------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "frontend/Frontend.h"
#include "graph/BindingGraph.h"
#include "synth/ProgramGen.h"
#include "synth/SourceGen.h"

#include <gtest/gtest.h>

#include <map>

using namespace ipse;
using namespace ipse::ir;

namespace {

TEST(Generators, RandomProgramsVerify) {
  for (std::uint64_t Seed = 1; Seed <= 50; ++Seed) {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 20;
    Cfg.MaxNestDepth = 3;
    Program P = synth::generateProgram(Cfg);
    std::string Error;
    EXPECT_TRUE(P.verify(Error)) << "seed " << Seed << ": " << Error;
  }
}

TEST(Generators, Deterministic) {
  synth::ProgramGenConfig Cfg;
  Cfg.Seed = 77;
  Cfg.NumProcs = 15;
  Program A = synth::generateProgram(Cfg);
  Program B = synth::generateProgram(Cfg);
  EXPECT_EQ(A.numProcs(), B.numProcs());
  EXPECT_EQ(A.numVars(), B.numVars());
  EXPECT_EQ(A.numCallSites(), B.numCallSites());
  EXPECT_EQ(synth::emitMiniProc(A), synth::emitMiniProc(B));
}

TEST(Generators, ChainShape) {
  Program P = synth::makeChainProgram(10, 2);
  EXPECT_EQ(P.numProcs(), 11u);
  EXPECT_EQ(P.numCallSites(), 10u);
  graph::BindingGraph BG(P);
  // Chain of bindings: 9 proc-to-proc calls x 2 formals = 18 edges.
  EXPECT_EQ(BG.numEdges(), 18u);
}

TEST(Generators, CycleShape) {
  Program P = synth::makeCycleProgram(6, 1);
  EXPECT_EQ(P.numCallSites(), 7u); // main's entry + 6 ring calls.
  std::string Error;
  EXPECT_TRUE(P.verify(Error)) << Error;
}

TEST(Generators, NestedShapeReachesRequestedDepth) {
  Program P = synth::makeNestedProgram(6, 2, 3);
  EXPECT_EQ(P.maxProcLevel(), 6u);
  std::string Error;
  EXPECT_TRUE(P.verify(Error)) << Error;
}

TEST(Generators, FortranStyleIsTwoLevel) {
  Program P = synth::makeFortranStyleProgram(30, 10, 2, 11);
  EXPECT_EQ(P.maxProcLevel(), 1u);
  EXPECT_EQ(P.proc(P.main()).Locals.size(), 10u);
}

TEST(Generators, LayeredShape) {
  Program P = synth::makeLayeredProgram(4, 3, 2, 2, 2, 5);
  EXPECT_EQ(P.numProcs(), 13u); // main + 4*3.
  std::string Error;
  EXPECT_TRUE(P.verify(Error)) << Error;
}

TEST(SourceGen, EmitsParsableSource) {
  Program P = synth::makeChainProgram(5, 2);
  std::string Source = synth::emitMiniProc(P);
  frontend::CompileResult R = frontend::compileMiniProc(Source);
  ASSERT_TRUE(R.succeeded()) << R.Diags.renderAll() << "\n" << Source;
}

/// End-to-end integration: generate a program, print it as MiniProc,
/// compile it back, and check that the analysis results match variable by
/// variable (names are unique, so name-based comparison is exact).
void roundTrip(const Program &P) {
  std::string Source = synth::emitMiniProc(P);
  frontend::CompileResult R = frontend::compileMiniProc(Source);
  ASSERT_TRUE(R.succeeded()) << R.Diags.renderAll() << "\n" << Source;
  const Program &Q = *R.Program;
  ASSERT_EQ(P.numProcs(), Q.numProcs());
  ASSERT_EQ(P.numVars(), Q.numVars());
  ASSERT_EQ(P.numCallSites(), Q.numCallSites());

  analysis::SideEffectAnalyzer AnP(P);
  analysis::SideEffectAnalyzer AnQ(Q);

  // Procedures match by name (ids may be permuted by declaration order).
  std::map<std::string, ProcId> QProcs;
  for (std::uint32_t I = 0; I != Q.numProcs(); ++I)
    QProcs[Q.name(ProcId(I))] = ProcId(I);

  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    ProcId PProc(I);
    auto It = QProcs.find(P.name(PProc));
    ASSERT_NE(It, QProcs.end()) << P.name(PProc);
    EXPECT_EQ(AnP.setToString(AnP.gmod(PProc)),
              AnQ.setToString(AnQ.gmod(It->second)))
        << "GMOD mismatch at " << P.name(PProc);
  }
}

TEST(RoundTrip, Chain) { roundTrip(synth::makeChainProgram(8, 3)); }
TEST(RoundTrip, Cycle) { roundTrip(synth::makeCycleProgram(7, 2)); }
TEST(RoundTrip, Layered) {
  roundTrip(synth::makeLayeredProgram(3, 4, 2, 2, 3, 9));
}
TEST(RoundTrip, Fortran) {
  roundTrip(synth::makeFortranStyleProgram(15, 6, 2, 4));
}
TEST(RoundTrip, Nested) { roundTrip(synth::makeNestedProgram(4, 2, 21)); }

TEST(RoundTrip, RandomPrograms) {
  for (std::uint64_t Seed : {1ull, 5ull, 9ull, 14ull, 27ull}) {
    synth::ProgramGenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 12;
    Cfg.NumGlobals = 4;
    Cfg.MaxNestDepth = 3;
    roundTrip(synth::generateProgram(Cfg));
  }
}

} // namespace
