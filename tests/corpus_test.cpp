//===- tests/corpus_test.cpp - Golden results for the MiniProc corpus ---------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// End-to-end coverage on realistic source programs (examples/corpus/):
// every file must compile, verify, agree across all solvers, and match
// hand-derived golden facts.
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "analysis/SideEffectAnalyzer.h"
#include "baselines/IterativeSolver.h"
#include "frontend/Frontend.h"
#include "graph/CallGraph.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace ipse;
using namespace ipse::ir;

namespace {

Program compileCorpusFile(const std::string &Name) {
  std::string Path = std::string(IPSE_SOURCE_DIR) + "/examples/corpus/" +
                     Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  frontend::CompileResult R = frontend::compileMiniProc(SS.str());
  EXPECT_TRUE(R.succeeded()) << Name << ":\n" << R.Diags.renderAll();
  return std::move(*R.Program);
}

/// Finds a procedure by name.
ProcId procNamed(const Program &P, const std::string &Name) {
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    if (P.name(ProcId(I)) == Name)
      return ProcId(I);
  ADD_FAILURE() << "no procedure named " << Name;
  return ProcId(0);
}

/// Shared sanity: structure verifies and the fast pipeline matches the
/// equation-(1) oracle.
void checkAgainstOracle(const Program &P) {
  std::string Error;
  ASSERT_TRUE(P.verify(Error)) << Error;
  analysis::SideEffectAnalyzer An(P);
  analysis::VarMasks Masks(P);
  graph::CallGraph CG(P);
  analysis::LocalEffects Local(P, Masks, analysis::EffectKind::Mod);
  baselines::IterativeResult Oracle =
      baselines::solveIterative(P, CG, Masks, Local);
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    EXPECT_EQ(An.gmod(ProcId(I)), Oracle.GMod.GMod[I]) << P.name(ProcId(I));
}

TEST(Corpus, Banking) {
  Program P = compileCorpusFile("banking.mp");
  checkAgainstOracle(P);
  analysis::SideEffectAnalyzer An(P);

  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "log_entry"))), "ledger");
  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "charge_fee"))),
            "balance, fees, ledger");
  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "deposit"))),
            "balance, ledger");
  // withdraw and retry are one SCC: identical global side effects.
  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "withdraw"))),
            "attempts, balance, errors, ledger");
  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "retry"))),
            "attempts, balance, errors, ledger");
  // main touches everything (read balance counts as a MOD).
  EXPECT_EQ(An.setToString(An.gmod(P.main())),
            "attempts, balance, errors, fees, ledger");
  // No formal parameter is ever assigned.
  for (std::uint32_t I = 0; I != P.numVars(); ++I)
    if (P.var(VarId(I)).Kind == VarKind::Formal)
      EXPECT_FALSE(An.rmodContains(VarId(I)));
}

TEST(Corpus, SwapChain) {
  Program P = compileCorpusFile("swap_chain.mp");
  checkAgainstOracle(P);
  analysis::SideEffectAnalyzer An(P);

  ProcId Set = procNamed(P, "set");
  ProcId Swap = procNamed(P, "swap");
  ProcId Rotate = procNamed(P, "rotate");
  // RMOD: dst; x and y; p, q and r — all through binding chains.
  EXPECT_TRUE(An.rmodContains(P.proc(Set).Formals[0]));
  EXPECT_FALSE(An.rmodContains(P.proc(Set).Formals[1]));
  EXPECT_TRUE(An.rmodContains(P.proc(Swap).Formals[0]));
  EXPECT_TRUE(An.rmodContains(P.proc(Swap).Formals[1]));
  for (VarId F : P.proc(Rotate).Formals)
    EXPECT_TRUE(An.rmodContains(F));

  EXPECT_EQ(An.setToString(An.gmod(Rotate)),
            "rotate.p, rotate.q, rotate.r, tmp");
  EXPECT_EQ(An.setToString(An.gmod(P.main())), "a, b, c, tmp");
}

TEST(Corpus, Accumulator) {
  Program P = compileCorpusFile("accumulator.mp");
  checkAgainstOracle(P);
  ASSERT_EQ(P.maxProcLevel(), 2u);
  analysis::SideEffectAnalyzer An(P);

  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "add"))),
            "process.n, process.sum");
  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "publish"))),
            "count, total");
  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "process"))),
            "count, process.n, process.sum, total");
  // process's locals vanish at main.
  EXPECT_EQ(An.setToString(An.gmod(P.main())), "count, total");
}

TEST(Corpus, Evaluator) {
  Program P = compileCorpusFile("evaluator.mp");
  checkAgainstOracle(P);
  analysis::SideEffectAnalyzer An(P);

  // The three-procedure cycle shares its global effects.
  const char *Expected = "depth, faults, result";
  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "eval"))), Expected);
  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "apply"))), Expected);
  EXPECT_EQ(An.setToString(An.gmod(procNamed(P, "reduce"))), Expected);
  EXPECT_EQ(An.setToString(An.gmod(P.main())), Expected);
}

TEST(Corpus, Tower) {
  Program P = compileCorpusFile("tower.mp");
  checkAgainstOracle(P);
  ASSERT_EQ(P.maxProcLevel(), 3u);
  analysis::SideEffectAnalyzer An(P);

  ProcId L1 = procNamed(P, "level1");
  ProcId L3 = procNamed(P, "level3");
  // level3 stores into level1's formal (two lexical levels up).
  const EffectSet &G3 = An.gmod(L3);
  EXPECT_TRUE(G3.test(P.proc(L1).Formals[0].index()));
  EXPECT_EQ(An.setToString(An.gmod(P.main())), "g");
  // a1 is in RMOD(level1) through the nested store.
  EXPECT_TRUE(An.rmodContains(P.proc(L1).Formals[0]));
}

TEST(Corpus, Shadowing) {
  Program P = compileCorpusFile("shadowing.mp");
  checkAgainstOracle(P);
  analysis::SideEffectAnalyzer An(P);
  analysis::AnalyzerOptions UseOpts;
  UseOpts.Kind = analysis::EffectKind::Use;
  analysis::SideEffectAnalyzer Use(P, UseOpts);

  ProcId Observe = procNamed(P, "observe");
  ProcId Worker = procNamed(P, "worker");
  // worker's local x shadows the global; its effects stay local.
  EXPECT_EQ(An.setToString(An.gmod(Worker)), "log, worker.x");
  EXPECT_EQ(An.setToString(An.gmod(P.main())), "log, x");
  // observe never modifies its formal but uses it.
  EXPECT_FALSE(An.rmodContains(P.proc(Observe).Formals[0]));
  EXPECT_TRUE(Use.rmodContains(P.proc(Observe).Formals[0]));
  // The by-value call site binds nothing: per-call DUSE is just log.
  CallSiteId ByValue = P.proc(Worker).CallSites[1];
  EXPECT_EQ(Use.setToString(Use.dmod(ByValue)), "log");
  CallSiteId ByRef = P.proc(Worker).CallSites[0];
  EXPECT_EQ(Use.setToString(Use.dmod(ByRef)), "log, worker.x");
}

TEST(Corpus, Ackermann) {
  Program P = compileCorpusFile("ackermann.mp");
  checkAgainstOracle(P);
  analysis::SideEffectAnalyzer An(P);
  analysis::AnalyzerOptions UseOpts;
  UseOpts.Kind = analysis::EffectKind::Use;
  analysis::SideEffectAnalyzer Use(P, UseOpts);

  ProcId Ack = procNamed(P, "ack");
  EXPECT_EQ(An.setToString(An.gmod(Ack)), "ack.out, ack.t, calls");
  EXPECT_EQ(Use.setToString(Use.gmod(Ack)), "ack.m, ack.n, ack.t, calls");
  EXPECT_EQ(An.setToString(An.gmod(P.main())), "calls, result");
  // out is write-only, m and n read-only.
  const Procedure &Pr = P.proc(Ack);
  EXPECT_FALSE(An.rmodContains(Pr.Formals[0]));
  EXPECT_FALSE(An.rmodContains(Pr.Formals[1]));
  EXPECT_TRUE(An.rmodContains(Pr.Formals[2]));
  EXPECT_TRUE(Use.rmodContains(Pr.Formals[0]));
  EXPECT_TRUE(Use.rmodContains(Pr.Formals[1]));
  EXPECT_FALSE(Use.rmodContains(Pr.Formals[2]));
}

TEST(Corpus, ReportsAreStable) {
  Program P = compileCorpusFile("swap_chain.mp");
  analysis::ReportOptions Options;
  Options.IncludeRMod = true;
  std::string Report = analysis::makeReport(P, Options);
  // Spot-check the format and a few facts.
  EXPECT_NE(Report.find("GMOD = { rotate.p, rotate.q, rotate.r, tmp }"),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("dst: RMOD"), std::string::npos) << Report;
  EXPECT_NE(Report.find("src: -"), std::string::npos) << Report;
  // Two runs are byte-identical (determinism).
  EXPECT_EQ(Report, analysis::makeReport(P, Options));
}

} // namespace
