//===- examples/compare_algorithms.cpp - Every solver, one program ------------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Generates a synthetic program (size from argv[1], default 2000
// procedures), solves GMOD with every algorithm in the repository, checks
// that all answers are identical, and prints a timing / work table — a
// one-command version of the E1/E2 experiments.
//
//===----------------------------------------------------------------------===//

#include "analysis/GMod.h"
#include "analysis/IModPlus.h"
#include "analysis/LocalEffects.h"
#include "analysis/MultiLevelGMod.h"
#include "analysis/RMod.h"
#include "baselines/IterativeSolver.h"
#include "baselines/RModIterative.h"
#include "baselines/SwiftStyleSolver.h"
#include "baselines/WorklistSolver.h"
#include "graph/BindingGraph.h"
#include "graph/Reachability.h"
#include "synth/ProgramGen.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

using namespace ipse;
using namespace ipse::analysis;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Times one solver and verifies its GMOD result against the reference.
void run(const char *Name, const std::vector<EffectSet> *Reference,
         const std::function<std::vector<EffectSet>()> &Solve,
         std::vector<EffectSet> *Out = nullptr) {
  EffectSet::resetOpCount();
  auto Start = std::chrono::steady_clock::now();
  std::vector<EffectSet> Result = Solve();
  double Ms = msSince(Start);
  std::uint64_t Words = EffectSet::opCount();

  bool Match = true;
  if (Reference)
    for (std::size_t I = 0; I != Result.size(); ++I)
      Match &= Result[I] == (*Reference)[I];
  std::printf("  %-28s %10.2f ms   %12llu words   %s\n", Name, Ms,
              static_cast<unsigned long long>(Words),
              Reference ? (Match ? "MATCHES" : "** MISMATCH **")
                        : "(reference)");
  if (!Match)
    std::exit(1);
  if (Out)
    *Out = std::move(Result);
}

} // namespace

int main(int argc, char **argv) {
  unsigned N = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2000;

  synth::ProgramGenConfig Cfg;
  Cfg.Seed = 7;
  Cfg.NumProcs = N;
  Cfg.NumGlobals = std::max(8u, N / 8);
  Cfg.MaxFormals = 3;
  Cfg.MaxCallsPerProc = 4;
  ir::Program P = graph::eliminateUnreachable(synth::generateProgram(Cfg));

  std::printf("Synthetic program: %zu procedures, %zu variables, "
              "%zu call sites\n\n",
              P.numProcs(), P.numVars(), P.numCallSites());

  VarMasks Masks(P);
  graph::CallGraph CG(P);
  graph::BindingGraph BG(P);
  LocalEffects Local(P, Masks, EffectKind::Mod);
  std::printf("Binding multi-graph: %zu nodes, %zu edges\n\n", BG.numNodes(),
              BG.numEdges());

  // ---- RMOD phase. ----------------------------------------------------------
  std::printf("RMOD (reference formal parameter problem):\n");
  RModResult Fig1;
  {
    auto Start = std::chrono::steady_clock::now();
    Fig1 = solveRMod(P, BG, Local);
    std::printf("  %-28s %10.2f ms   %12llu boolean steps\n",
                "Figure 1 (binding graph)", msSince(Start),
                static_cast<unsigned long long>(Fig1.BooleanSteps));
  }
  {
    auto Start = std::chrono::steady_clock::now();
    RModResult Iter = baselines::solveRModIterative(P, BG, Local);
    std::printf("  %-28s %10.2f ms   %12llu boolean steps   %s\n",
                "round-robin on beta", msSince(Start),
                static_cast<unsigned long long>(Iter.BooleanSteps),
                Iter.ModifiedFormals == Fig1.ModifiedFormals
                    ? "MATCHES"
                    : "** MISMATCH **");
  }
  {
    EffectSet::resetOpCount();
    auto Start = std::chrono::steady_clock::now();
    baselines::SwiftRModResult Swift =
        baselines::solveSwiftRMod(P, CG, Masks, Local);
    std::printf("  %-28s %10.2f ms   %12llu words           %s\n",
                "swift-style bit vectors", msSince(Start),
                static_cast<unsigned long long>(EffectSet::opCount()),
                Swift.RMod.ModifiedFormals == Fig1.ModifiedFormals
                    ? "MATCHES"
                    : "** MISMATCH **");
  }

  // ---- GMOD phase. ----------------------------------------------------------
  std::vector<EffectSet> Plus = computeIModPlus(P, Local, Fig1);
  std::printf("\nGMOD (global variable problem):\n");
  std::vector<EffectSet> Reference;
  run("findgmod (Figure 2)", nullptr,
      [&] { return solveGMod(P, CG, Masks, Plus).GMod; }, &Reference);
  run("multi-level repeated", &Reference,
      [&] { return solveMultiLevelRepeated(P, CG, Masks, Plus).GMod; });
  run("multi-level combined", &Reference,
      [&] { return solveMultiLevelCombined(P, CG, Masks, Plus).GMod; });
  run("worklist (eq. 1)", &Reference, [&] {
    return baselines::solveWorklist(P, CG, Masks, Local).GMod.GMod;
  });
  run("round-robin (eq. 1)", &Reference, [&] {
    return baselines::solveIterative(P, CG, Masks, Local).GMod.GMod;
  });
  run("swift two-phase", &Reference, [&] {
    return baselines::solveSwift(P, CG, Masks, Local).GMod.GMod;
  });

  std::printf("\nAll algorithms agree.\n");
  return 0;
}
