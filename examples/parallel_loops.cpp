//===- examples/parallel_loops.cpp - §6 sections for parallelization ----------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The motivating scenario of §6: a loop whose body calls a procedure that
// updates an array.  Whole-array MOD information ("UPDATE modifies A")
// forces the loop serial; regular sections ("UPDATE modifies row i of A")
// prove the iterations independent.  This example runs both analyses on
//
//   DO i = 1, n
//     CALL update(A, i)       ! update(r, i) writes r(i, *) through step()
//   END DO
//
// modeled as: main calls update(A, i); update(r, i) calls step(r-row-i).
//
//===----------------------------------------------------------------------===//

#include "analysis/RegularSectionAnalysis.h"
#include "analysis/SideEffectAnalyzer.h"
#include "ir/Printer.h"
#include "ir/ProgramBuilder.h"

#include <cstdio>

using namespace ipse;
using namespace ipse::ir;
using namespace ipse::analysis;

int main() {
  // ---- The program. --------------------------------------------------------
  ProgramBuilder B;
  ProcId Main = B.createMain("main");
  VarId A = B.addGlobal("A");  // the 2-d array
  VarId IV = B.addGlobal("i"); // the loop index

  // step(row): writes every element of its 1-d view.
  ProcId Step = B.createProc("step", Main);
  VarId Row = B.addFormal(Step, "row");
  StmtId SS = B.addStmt(Step);
  B.addMod(SS, Row);

  // update(r, k): passes row k of r to step.
  ProcId Update = B.createProc("update", Main);
  VarId Rf = B.addFormal(Update, "r");
  VarId Kf = B.addFormal(Update, "k");
  B.addCallStmt(Update, Step, {Rf}); // annotated as a row binding below

  // main: the loop body is `call update(A, i)`.
  StmtId LoopBody = B.addStmt(Main);
  B.addUse(LoopBody, IV);
  B.addCall(LoopBody, Update, std::vector<VarId>{A, IV});
  Program P = B.finish();

  std::printf("Loop body under analysis:  DO i: call update(A, i)\n\n");

  // ---- Classical whole-array MOD. -------------------------------------------
  SideEffectAnalyzer Mod(P);
  std::printf("Whole-array analysis (standard framework):\n");
  std::printf("  DMOD(loop body) = { %s }\n",
              Mod.setToString(Mod.dmod(LoopBody)).c_str());
  std::printf("  -> A is modified as a unit; iterations i and i' conflict;"
              " the loop is SERIAL.\n\n");

  // ---- Regular sections (§6). ------------------------------------------------
  graph::BindingGraph &BG =
      const_cast<graph::BindingGraph &>(Mod.bindingGraph());
  RsdProblem Problem(P, BG);
  Problem.setFormalArray(Row, 1);
  Problem.setFormalArray(Rf, 2);
  // step writes its whole 1-d view.
  Problem.setLocalSection(Row, RegularSection::whole(1));
  // The binding event r -> row is "row k of r".
  graph::NodeId RNode = BG.nodeOf(Rf);
  for (const graph::Adjacency &Adj : BG.graph().succs(RNode))
    Problem.setEdgeBinding(Adj.Edge,
                           SectionBinding::rowOf(Subscript::symbol(Kf)));

  RsdResult Sections = solveRsd(Problem);
  std::printf("Regular-section analysis (Figure 3 lattice):\n");
  std::printf("  rsd(step.row)  = %s\n", Sections.of(Row).toString().c_str());
  std::printf("  rsd(update.r)  = %s   (k = update's second formal)\n",
              Sections.of(Rf).toString().c_str());

  // At the call site, k is bound to the loop index i: iteration i touches
  // A(i, *).  Distinct iterations mean distinct constant rows:
  RegularSection Iter1 = RegularSection::section2(Subscript::constant(1),
                                                  Subscript::star());
  RegularSection Iter2 = RegularSection::section2(Subscript::constant(2),
                                                  Subscript::star());
  std::printf("\n  iteration i=1 touches A%s, i=2 touches A%s\n",
              Iter1.toString().c_str(), Iter2.toString().c_str());
  std::printf("  sections intersect? %s\n",
              Iter1.mayIntersect(Iter2) ? "yes" : "no");
  std::printf("  -> each iteration owns one row; the loop is PARALLEL.\n");
  return 0;
}
