//===- examples/quickstart.cpp - Build a program, ask for its side effects ----===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// The five-minute tour: construct a small program with ProgramBuilder, run
// SideEffectAnalyzer, and read off RMOD / GMOD / DMOD / MOD.  The program
// is the paper-style example used throughout the test suite:
//
//   program main; var g, h;
//     proc q(c);        begin c := g; end;
//     proc p(a, b); var x;
//       begin x := a + 1; call q(b); h := 2; end;
//   begin call p(g, h); write g; end.
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasEstimator.h"
#include "analysis/SideEffectAnalyzer.h"
#include "ir/Printer.h"
#include "ir/ProgramBuilder.h"

#include <cstdio>

using namespace ipse;
using namespace ipse::ir;

int main() {
  // ---- Build the program. -------------------------------------------------
  ProgramBuilder B;
  ProcId Main = B.createMain("main");
  VarId G = B.addGlobal("g");
  VarId H = B.addGlobal("h");

  ProcId Q = B.createProc("q", Main);
  VarId C = B.addFormal(Q, "c");
  StmtId QS = B.addStmt(Q); // c := g
  B.addMod(QS, C);
  B.addUse(QS, G);

  ProcId P = B.createProc("p", Main);
  VarId A = B.addFormal(P, "a");
  VarId Bv = B.addFormal(P, "b");
  VarId X = B.addLocal(P, "x");
  StmtId PS = B.addStmt(P); // x := a + 1
  B.addMod(PS, X);
  B.addUse(PS, A);
  B.addCallStmt(P, Q, {Bv}); // call q(b)
  StmtId PH = B.addStmt(P);  // h := 2
  B.addMod(PH, H);

  StmtId CallStmt = B.addStmt(Main); // call p(g, h)
  B.addCall(CallStmt, P, std::vector<VarId>{G, H});

  Program Prog = B.finish();
  std::printf("The program under analysis:\n%s\n",
              printProgram(Prog).c_str());

  // ---- Run the Cooper-Kennedy pipeline (MOD). -----------------------------
  analysis::SideEffectAnalyzer Mod(Prog);

  std::printf("RMOD (formals modified by an invocation of their owner):\n");
  for (VarId F : {C, A, Bv})
    std::printf("  %-6s : %s\n", qualifiedName(Prog, F).c_str(),
                Mod.rmodContains(F) ? "modified" : "not modified");

  std::printf("\nGMOD per procedure:\n");
  for (std::uint32_t I = 0; I != Prog.numProcs(); ++I)
    std::printf("  GMOD(%-4s) = { %s }\n", Prog.name(ProcId(I)).c_str(),
                Mod.setToString(Mod.gmod(ProcId(I))).c_str());

  std::printf("\nDMOD of the call site `call p(g, h)` in main:\n");
  std::printf("  DMOD = { %s }\n",
              Mod.setToString(Mod.dmod(CallStmt)).c_str());

  // ---- Factor in aliases (§5). --------------------------------------------
  AliasInfo Aliases = analysis::estimateAliases(Prog);
  std::printf("\nMOD of the same call site under estimated aliases:\n");
  std::printf("  MOD  = { %s }\n",
              Mod.setToString(Mod.mod(CallStmt, Aliases)).c_str());

  // ---- The USE problem is the same pipeline with the other seed sets. -----
  analysis::AnalyzerOptions UseOpts;
  UseOpts.Kind = analysis::EffectKind::Use;
  analysis::SideEffectAnalyzer Use(Prog, UseOpts);
  std::printf("\nGUSE per procedure:\n");
  for (std::uint32_t I = 0; I != Prog.numProcs(); ++I)
    std::printf("  GUSE(%-4s) = { %s }\n", Prog.name(ProcId(I)).c_str(),
                Use.setToString(Use.gmod(ProcId(I))).c_str());
  return 0;
}
