//===- examples/analyze_source.cpp - MOD/USE report for MiniProc source -------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// A small "compiler driver": parses a MiniProc source file, runs the whole
// pipeline, and prints the report an optimizer would consume — GMOD/GUSE
// per procedure and DMOD/DUSE per call site.  With --dot it also emits the
// call multi-graph and the binding multi-graph in GraphViz syntax.
//
//   usage: analyze_source [--dot] [file.mp]
//
// Without a file argument it analyzes a built-in sample that exercises
// nesting, recursion, and reference parameters.
//
//===----------------------------------------------------------------------===//

#include "analysis/SideEffectAnalyzer.h"
#include "frontend/Frontend.h"
#include "graph/Dot.h"
#include "ir/Printer.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace ipse;
using namespace ipse::ir;

namespace {

const char *SampleSource = R"(// Built-in sample: nesting + recursion + reference parameters.
program sample;
var total, depth;

proc bump(x);
begin
  x := x + 1;
end;

proc walk(n);
  var local;
  proc note();
  begin
    total := total + n;   // nested proc writes a global and reads a formal
  end;
begin
  if n then
    call note();
    call bump(depth);     // global passed by reference
    call walk(n);         // recursion
  end;
  local := n;
end;

begin
  call walk(depth);
  write total;
end.
)";

std::string readFileOrSample(const char *Path) {
  if (!Path)
    return SampleSource;
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    std::exit(1);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

int main(int argc, char **argv) {
  bool EmitDot = false;
  const char *Path = nullptr;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--dot")
      EmitDot = true;
    else
      Path = argv[I];
  }

  std::string Source = readFileOrSample(Path);
  frontend::CompileResult R = frontend::compileMiniProc(Source);
  if (!R.succeeded()) {
    std::fprintf(stderr, "%s", R.Diags.renderAll().c_str());
    return 1;
  }
  const Program &P = *R.Program;

  analysis::SideEffectAnalyzer Mod(P);
  analysis::AnalyzerOptions UseOpts;
  UseOpts.Kind = analysis::EffectKind::Use;
  analysis::SideEffectAnalyzer Use(P, UseOpts);

  if (EmitDot) {
    std::printf("%s\n", graph::callGraphToDot(P, Mod.callGraph()).c_str());
    std::printf("%s\n",
                graph::bindingGraphToDot(P, Mod.bindingGraph()).c_str());
    return 0;
  }

  std::printf("Per-procedure summaries (dP = %u, %zu procedures, "
              "%zu call sites, beta: %zu nodes / %zu edges):\n\n",
              P.maxProcLevel(), P.numProcs(), P.numCallSites(),
              Mod.bindingGraph().numNodes(), Mod.bindingGraph().numEdges());
  for (std::uint32_t I = 0; I != P.numProcs(); ++I) {
    ProcId Proc(I);
    std::printf("  %s\n", P.name(Proc).c_str());
    std::printf("    GMOD = { %s }\n",
                Mod.setToString(Mod.gmod(Proc)).c_str());
    std::printf("    GUSE = { %s }\n",
                Use.setToString(Use.gmod(Proc)).c_str());
  }

  std::printf("\nPer-call-site summaries:\n\n");
  for (std::uint32_t I = 0; I != P.numCallSites(); ++I) {
    CallSiteId Site(I);
    const CallSite &C = P.callSite(Site);
    std::printf("  call %s from %s\n", P.name(C.Callee).c_str(),
                P.name(C.Caller).c_str());
    std::printf("    DMOD = { %s }\n",
                Mod.setToString(Mod.dmod(Site)).c_str());
    std::printf("    DUSE = { %s }\n",
                Use.setToString(Use.dmod(Site)).c_str());
  }
  return 0;
}
