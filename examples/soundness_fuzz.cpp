//===- examples/soundness_fuzz.cpp - Execute-and-check fuzzing loop -----------===//
//
// Part of the ipse project: a reproduction of Cooper & Kennedy,
// "Interprocedural Side-Effect Analysis in Linear Time", PLDI 1988.
//
//===----------------------------------------------------------------------===//
//
// Differential fuzzing driver: generate a random program, render it to
// MiniProc, compile it back, *execute* it with the concrete interpreter,
// and verify that every variable observed written (read) during each call
// is contained in the analyzer's MOD (USE) answer for that call statement.
// A flow-insensitive analysis must over-approximate every run, so any
// violation is a bug — this harness is how the alias-estimator's
// nested-scoping bug was found (see DESIGN.md).
//
//   usage: soundness_fuzz [iterations] [start-seed]
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasEstimator.h"
#include "analysis/SideEffectAnalyzer.h"
#include "frontend/Interpreter.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/Printer.h"
#include "synth/ProgramGen.h"
#include "synth/SourceGen.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

using namespace ipse;
using namespace ipse::ir;

namespace {

std::set<std::string> namesOf(const Program &P, const EffectSet &BV) {
  std::set<std::string> Out;
  BV.forEachSetBit([&](std::size_t I) {
    Out.insert(qualifiedName(P, VarId(static_cast<std::uint32_t>(I))));
  });
  return Out;
}

/// Returns the number of violations found (0 = sound on this program).
unsigned checkOneSeed(std::uint64_t Seed, std::uint64_t &CallsChecked) {
  synth::ProgramGenConfig Cfg;
  Cfg.Seed = Seed;
  Cfg.NumProcs = 8 + Seed % 10;
  Cfg.NumGlobals = 3 + Seed % 4;
  Cfg.MaxFormals = 3;
  Cfg.MaxNestDepth = 1 + Seed % 4;
  Cfg.MaxCallsPerProc = 3;
  Cfg.UseDensityPct = 40;
  Cfg.ModDensityPct = 40;
  std::string Source = synth::emitMiniProc(synth::generateProgram(Cfg));

  frontend::DiagnosticEngine Diags;
  std::vector<frontend::Token> Tokens = frontend::lex(Source, Diags);
  std::unique_ptr<frontend::ast::ProgramAst> Ast =
      frontend::parse(Tokens, Diags);
  if (!Ast) {
    std::fprintf(stderr, "seed %llu: generated source failed to parse\n%s",
                 static_cast<unsigned long long>(Seed),
                 Diags.renderAll().c_str());
    return 1;
  }
  std::optional<Program> Prog = frontend::lowerToIr(*Ast, Diags);
  if (!Prog) {
    std::fprintf(stderr, "seed %llu: generated source failed sema\n",
                 static_cast<unsigned long long>(Seed));
    return 1;
  }
  const Program &P = *Prog;

  analysis::SideEffectAnalyzer Mod(P);
  analysis::AnalyzerOptions UseOpts;
  UseOpts.Kind = analysis::EffectKind::Use;
  analysis::SideEffectAnalyzer Use(P, UseOpts);
  AliasInfo Aliases = analysis::estimateAliases(P);

  frontend::InterpreterOptions Options;
  Options.MaxSteps = 5000;
  Options.Input = {1, 2, 3, 5, 8};
  frontend::ExecutionResult R = frontend::interpret(*Ast, Options);

  std::map<std::string, ProcId> Procs;
  for (std::uint32_t I = 0; I != P.numProcs(); ++I)
    Procs[P.name(ProcId(I))] = ProcId(I);

  unsigned Violations = 0;
  for (const frontend::CallEvent &E : R.Calls) {
    const Procedure &Caller = P.proc(Procs.at(E.CallerProc));
    CallSiteId Site = Caller.CallSites[E.CallIndexInCaller];
    StmtId CallStmt = P.callSite(Site).Stmt;
    ++CallsChecked;

    std::set<std::string> ModSet = namesOf(P, Mod.mod(CallStmt, Aliases));
    std::set<std::string> UseSet = namesOf(P, Use.mod(CallStmt, Aliases));
    for (const std::string &W : E.WrittenVisible)
      if (!ModSet.count(W)) {
        std::fprintf(stderr,
                     "seed %llu: UNSOUND MOD: '%s' written in call of %s "
                     "from %s\n",
                     static_cast<unsigned long long>(Seed), W.c_str(),
                     E.Callee.c_str(), E.CallerProc.c_str());
        ++Violations;
      }
    for (const std::string &Rd : E.ReadVisible)
      if (!UseSet.count(Rd)) {
        std::fprintf(stderr,
                     "seed %llu: UNSOUND USE: '%s' read in call of %s "
                     "from %s\n",
                     static_cast<unsigned long long>(Seed), Rd.c_str(),
                     E.Callee.c_str(), E.CallerProc.c_str());
        ++Violations;
      }
  }
  return Violations;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Iterations = argc > 1 ? std::atoi(argv[1]) : 200;
  std::uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  unsigned Violations = 0;
  std::uint64_t CallsChecked = 0;
  for (unsigned I = 0; I != Iterations; ++I)
    Violations += checkOneSeed(Seed + I, CallsChecked);

  std::printf("%u programs executed, %llu call events checked, "
              "%u violations\n",
              Iterations, static_cast<unsigned long long>(CallsChecked),
              Violations);
  return Violations == 0 ? 0 : 1;
}
